//! Engine scaling: BDD vs SDP vs cut-set fault tree vs Monte-Carlo on
//! systems with growing redundancy (parallel chains sharing terminals —
//! the structure UPSIMs produce).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dependability::bdd::Bdd;
use dependability::cutsets::{fault_tree_from_cut_sets, minimal_cut_sets, CutLimits};
use dependability::montecarlo::estimate_single;
use dependability::sdp::union_probability;
use std::hint::black_box;

/// `routes` disjoint 3-hop chains sharing requester (var 0) and provider
/// (var 1): path i = {0, 1, 2+2i, 3+2i}.
fn shared_terminal_system(routes: usize) -> (Vec<Vec<usize>>, Vec<f64>) {
    let sets: Vec<Vec<usize>> = (0..routes)
        .map(|i| vec![0, 1, 2 + 2 * i, 3 + 2 * i])
        .collect();
    let probs = vec![0.95; 2 + 2 * routes];
    (sets, probs)
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    for routes in [2usize, 4, 8] {
        let (sets, probs) = shared_terminal_system(routes);

        group.bench_with_input(BenchmarkId::new("bdd", routes), &routes, |b, _| {
            b.iter(|| {
                let mut bdd = Bdd::new();
                let f = bdd.from_path_sets(&sets);
                black_box(bdd.probability(f, &probs))
            })
        });

        group.bench_with_input(BenchmarkId::new("sdp", routes), &routes, |b, _| {
            b.iter(|| black_box(union_probability(&sets, &probs)))
        });

        group.bench_with_input(BenchmarkId::new("cutset_ft", routes), &routes, |b, _| {
            b.iter(|| {
                let cuts = minimal_cut_sets(&sets, CutLimits::default());
                let ft = fault_tree_from_cut_sets(&cuts);
                black_box(ft.top_event_probability(&probs))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("engines/monte_carlo_20k");
    group.sample_size(10);
    for routes in [2usize, 8] {
        let (sets, probs) = shared_terminal_system(routes);
        group.bench_with_input(BenchmarkId::from_parameter(routes), &routes, |b, _| {
            b.iter(|| black_box(estimate_single(&probs, &sets, 20_000, 1, 5).estimate))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
