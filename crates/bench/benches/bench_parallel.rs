//! E11 timing: sequential vs parallel all-paths enumeration (IPPS angle).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use upsim_core::discovery::{discover_on_graph, DiscoveryOptions};
use upsim_core::mapping::ServiceMappingPair;

fn bench_parallel_enumeration(c: &mut Criterion) {
    let infra = netgen::random::complete(9);
    let view = infra.to_interned_graph();
    let pair = ServiceMappingPair::new("s", "n0", "n8");

    let mut group = c.benchmark_group("parallel/k9_all_paths");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let d = discover_on_graph(&view, &pair, DiscoveryOptions::default()).unwrap();
            black_box(d.len())
        })
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let options = DiscoveryOptions {
                    parallel: true,
                    threads,
                    ..Default::default()
                };
                b.iter(|| {
                    let d = discover_on_graph(&view, &pair, options).unwrap();
                    black_box(d.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel_monte_carlo(c: &mut Criterion) {
    // Monte-Carlo availability fan-out (dependability engine).
    let path_sets: Vec<Vec<usize>> = (0..8).map(|i| vec![0, 1 + i, 9]).collect();
    let availability = vec![0.99; 10];
    let mut group = c.benchmark_group("parallel/monte_carlo_100k");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| {
                let r = dependability::montecarlo::estimate_single(
                    &availability,
                    &path_sets,
                    100_000,
                    w,
                    42,
                );
                black_box(r.estimate)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_enumeration,
    bench_parallel_monte_carlo
);
criterion_main!(benches);
