//! E9 timing: path-discovery scaling — factorial on complete graphs,
//! benign on tree-like campus networks (paper Sec. V-D).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netgen::campus::{campus_scenario, CampusParams};
use std::hint::black_box;
use upsim_core::discovery::{discover_on_graph, DiscoveryOptions};
use upsim_core::mapping::ServiceMappingPair;

fn bench_complete_graphs(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/complete_graph");
    group.sample_size(10);
    for n in [5usize, 6, 7, 8] {
        let infra = netgen::random::complete(n);
        let view = infra.to_interned_graph();
        let pair = ServiceMappingPair::new("s", "n0", format!("n{}", n - 1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let d = discover_on_graph(&view, &pair, DiscoveryOptions::default()).unwrap();
                black_box(d.len())
            })
        });
    }
    group.finish();
}

fn bench_campus_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/campus");
    for distributions in [2usize, 8, 32] {
        let params = CampusParams {
            core: 2,
            distributions,
            edges_per_distribution: 2,
            clients_per_edge: 4,
            servers: 3,
            dual_homed_edges: false,
        };
        let (infra, _, _) = campus_scenario(params);
        let view = infra.to_interned_graph();
        let pair = ServiceMappingPair::new("s", "t0_0_0", "srv0");
        group.bench_with_input(
            BenchmarkId::from_parameter(infra.device_count()),
            &distributions,
            |b, _| {
                b.iter(|| {
                    let d = discover_on_graph(&view, &pair, DiscoveryOptions::default()).unwrap();
                    black_box(d.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_complete_graphs, bench_campus_sizes);
criterion_main!(benches);
