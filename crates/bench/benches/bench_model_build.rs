//! E2 timing: model construction, XMI serialization and model-space import
//! (Steps 1–2 and 5–6).

use criterion::{criterion_group, criterion_main, Criterion};
use netgen::usi::{printing_service, table_i_mapping, usi_infrastructure};
use std::hint::black_box;
use vpm::ModelSpace;

fn bench_model_build(c: &mut Criterion) {
    c.bench_function("model/usi_infrastructure_build", |b| {
        b.iter(|| black_box(usi_infrastructure().device_count()))
    });

    let infra = usi_infrastructure();

    c.bench_function("model/xmi_serialize_object_diagram", |b| {
        b.iter(|| black_box(uml::xmi::object_diagram_to_xml(&infra.objects).len()))
    });

    let xml = uml::xmi::object_diagram_to_xml(&infra.objects);
    c.bench_function("model/xmi_parse_object_diagram", |b| {
        b.iter(|| {
            black_box(
                uml::xmi::object_diagram_from_xml(&xml)
                    .unwrap()
                    .instances
                    .len(),
            )
        })
    });

    c.bench_function("model/space_import_infrastructure", |b| {
        b.iter(|| {
            let mut space = ModelSpace::new();
            upsim_core::importers::import_infrastructure(&mut space, &infra).unwrap();
            black_box(space.entity_count())
        })
    });

    c.bench_function("model/space_import_mapping", |b| {
        let mut space = ModelSpace::new();
        upsim_core::importers::import_infrastructure(&mut space, &infra).unwrap();
        let mapping = table_i_mapping();
        b.iter(|| {
            upsim_core::importers::import_mapping(&mut space, &mapping).unwrap();
            black_box(space.relation_count())
        })
    });

    c.bench_function("model/mapping_xml_roundtrip", |b| {
        let mapping = table_i_mapping();
        b.iter(|| {
            let xml = mapping.to_xml();
            black_box(
                upsim_core::mapping::ServiceMapping::from_xml(&xml)
                    .unwrap()
                    .pairs()
                    .len(),
            )
        })
    });

    c.bench_function("model/service_validate", |b| {
        let svc = printing_service();
        b.iter(|| black_box(svc.activity().validate().is_ok()))
    });
}

criterion_group!(benches, bench_model_build);
criterion_main!(benches);
