//! # upsim-bench — experiment harness
//!
//! Regenerates every table and figure of the paper (experiments E1–E15,
//! indexed in DESIGN.md §3) as plain-text reports. The `experiments` binary
//! prints them; the Criterion benches in `benches/` time the underlying
//! operations. Recorded outputs live in `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;

pub use table::Table;
