//! Discovery micro-benchmark: cold/warm × pruned/unpruned Step-7 path
//! discovery on generated campus networks (44, 358, 1222 devices),
//! emitted as `BENCH_discovery.json` for E9/E11 and CI tracking.
//!
//! Usage:
//!   `discovery_bench [--smoke] [--out <path>]`
//!
//! * `cold`  — every iteration starts from a fresh [`DiscoveryWorkspace`]
//!   (first-query allocation profile),
//! * `warm`  — one workspace reused across iterations (resident-engine
//!   steady state; buffers sit at their high-water mark),
//! * `pruned`/`unpruned` — block-cut-tree DFS masking on or off.
//!
//! The graph (interning + block-cut tree) is built once per campus and
//! shared by all four variants, so the numbers isolate the enumeration
//! itself — exactly what `ict_graph::prune` accelerates. `--smoke` runs a
//! single timed iteration per cell for CI.

use std::time::Instant;

use netgen::campus::{campus_infrastructure, CampusParams};
use upsim_core::discovery::{discover_with_workspace, DiscoveryOptions, DiscoveryWorkspace};
use upsim_core::mapping::ServiceMappingPair;

/// One timed cell of the cold/warm × pruned/unpruned × size matrix.
struct Cell {
    devices: usize,
    mode: &'static str,
    pruned: bool,
    iters: u32,
    total_ns: u128,
    paths: usize,
}

impl Cell {
    fn ns_per_iter(&self) -> f64 {
        self.total_ns as f64 / f64::from(self.iters.max(1))
    }
}

/// The three campus sizes of the scaling experiments (device counts match
/// `CampusParams::device_count`).
fn campuses() -> Vec<(usize, CampusParams)> {
    let shape = |distributions, epd, cpe| CampusParams {
        core: 2,
        distributions,
        edges_per_distribution: epd,
        clients_per_edge: cpe,
        servers: 3,
        dual_homed_edges: false,
    };
    vec![
        (44, shape(2, 2, 8)),
        (358, shape(32, 2, 4)),
        (1222, shape(64, 2, 8)),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_discovery.json")
        .to_string();

    let pair = ServiceMappingPair::new("request", "t0_0_0", "srv0");
    let mut cells: Vec<Cell> = Vec::new();

    for (devices, params) in campuses() {
        assert_eq!(params.device_count(), devices, "campus shape drifted");
        let infra = campus_infrastructure(params);
        let view = infra.to_interned_graph();
        // Iteration budget scales down with network size; smoke mode runs
        // one measured iteration per cell so CI stays fast.
        let iters: u32 = if smoke {
            1
        } else {
            match devices {
                0..=99 => 200,
                100..=599 => 50,
                _ => 10,
            }
        };
        for pruned in [true, false] {
            let options = DiscoveryOptions {
                parallel: false,
                prune: pruned,
                ..Default::default()
            };
            // Cold: a fresh workspace every iteration.
            let mut paths = 0;
            let start = Instant::now();
            for _ in 0..iters {
                let mut workspace = DiscoveryWorkspace::default();
                let found = discover_with_workspace(&view, &pair, options, &mut workspace)
                    .expect("campus pair resolves");
                paths = found.len();
            }
            cells.push(Cell {
                devices,
                mode: "cold",
                pruned,
                iters,
                total_ns: start.elapsed().as_nanos(),
                paths,
            });
            // Warm: one workspace reused, first call excluded from timing
            // so buffers are already at their high-water mark.
            let mut workspace = DiscoveryWorkspace::default();
            discover_with_workspace(&view, &pair, options, &mut workspace)
                .expect("campus pair resolves");
            let start = Instant::now();
            for _ in 0..iters {
                let found = discover_with_workspace(&view, &pair, options, &mut workspace)
                    .expect("campus pair resolves");
                paths = found.len();
            }
            cells.push(Cell {
                devices,
                mode: "warm",
                pruned,
                iters,
                total_ns: start.elapsed().as_nanos(),
                paths,
            });
        }
    }

    // Pruning must not change what is found — assert it here too, not just
    // in the proptests, so a regression also fails the bench job.
    for (devices, _) in campuses() {
        let per_size: Vec<&Cell> = cells.iter().filter(|c| c.devices == devices).collect();
        let counts: Vec<usize> = per_size.iter().map(|c| c.paths).collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "path counts diverged at {devices} devices: {counts:?}"
        );
    }

    let json = render_json(smoke, &cells);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    println!("discovery bench → {out}");
    println!(
        "{:>8} {:>6} {:>9} {:>7} {:>14} {:>8}",
        "devices", "mode", "variant", "iters", "ns/iter", "paths"
    );
    for cell in &cells {
        println!(
            "{:>8} {:>6} {:>9} {:>7} {:>14.0} {:>8}",
            cell.devices,
            cell.mode,
            if cell.pruned { "pruned" } else { "unpruned" },
            cell.iters,
            cell.ns_per_iter(),
            cell.paths
        );
    }
    for (devices, speedup) in cold_speedups(&cells) {
        println!("cold speedup (pruned vs unpruned) @ {devices} devices: {speedup:.2}x");
    }
}

/// Cold pruned-vs-unpruned speedup per campus size.
fn cold_speedups(cells: &[Cell]) -> Vec<(usize, f64)> {
    let find = |devices, pruned| {
        cells
            .iter()
            .find(|c| c.devices == devices && c.mode == "cold" && c.pruned == pruned)
            .expect("cell present")
            .ns_per_iter()
    };
    cells
        .iter()
        .filter(|c| c.mode == "cold" && c.pruned)
        .map(|c| (c.devices, find(c.devices, false) / find(c.devices, true)))
        .collect()
}

/// Hand-rolled JSON (numbers + fixed keys only; nothing needs escaping).
fn render_json(smoke: bool, cells: &[Cell]) -> String {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"discovery\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"pair\": \"t0_0_0 -> srv0\",\n");
    json.push_str("  \"results\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"devices\": {}, \"mode\": \"{}\", \"pruned\": {}, \"iters\": {}, \
             \"total_ns\": {}, \"ns_per_iter\": {:.1}, \"paths\": {}}}{}\n",
            cell.devices,
            cell.mode,
            cell.pruned,
            cell.iters,
            cell.total_ns,
            cell.ns_per_iter(),
            cell.paths,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"cold_speedup_pruned_vs_unpruned\": {");
    let speedups = cold_speedups(cells);
    for (i, (devices, speedup)) in speedups.iter().enumerate() {
        json.push_str(&format!(
            "\"{devices}\": {speedup:.3}{}",
            if i + 1 == speedups.len() { "" } else { ", " }
        ));
    }
    json.push_str("}\n}\n");
    json
}
