//! Monte-Carlo kernel benchmark: scalar (trial-at-a-time, counter-based
//! draws) vs the narrow bit-sliced executor (one `u64` word — 64 trials —
//! at a time) vs the wide kernel (8-word / 512-trial blocks, dispatched to
//! the best SIMD pack routine at runtime) on generated campus networks
//! (44, 358, 1222 devices), emitted as `BENCH_montecarlo.json` for CI
//! tracking.
//!
//! Usage:
//!   `mc_bench [--smoke] [--out <path>]`
//!
//! Per campus the full "fetch" service model (5 atomic services,
//! client `t0_0_0` → `srv0`) is built once through the pipeline; all
//! three engines then estimate the same user-perceived availability
//! across the worker-scaling sweep {1, 2, 4, 8} (+ all cores when
//! larger). Every cell records trials/sec and whether its 95% CI covers
//! the BDD-exact availability; the JSON also records `host_cpus` and
//! per-campus `parallel_efficiency` (throughput scaling / workers) for
//! the wide kernel. Hard invariants asserted in-bench, in every mode:
//!
//! * the wide kernel is bit-identical to the narrow executor in every
//!   cell (same draws, same structure function, same count),
//! * both bit-sliced estimates are invariant under the worker count
//!   (counter-based draws), so their deterministic CIs must cover the
//!   exact value outright,
//! * the posterior phase (block-resampled component parameters from
//!   synthetic observation traces) is bit-identical — estimate *and*
//!   predictive interval — across the same worker sweep, and the
//!   estimate stays close to the refined model's exact availability
//!   (coverage of the point-refined exact is recorded, not asserted:
//!   the posterior estimate targets the predictive mean, which sits a
//!   Jensen gap away).
//!
//! Outside `--smoke` the wide kernel must additionally clear a 2×
//! trials/sec speedup over the narrow executor and an 8× speedup over
//! the scalar sampler on the largest campus at equal worker counts, and
//! bit-sliced trials/sec must be monotone non-decreasing in workers (5%
//! noise floor) across every count the host can truly run in parallel
//! (`workers <= host_cpus` — a 1-CPU container measures oversubscription
//! above that, which is recorded but not asserted).

use std::time::Instant;

use dependability::mcprog::wide_kernel_name;
use dependability::transform::{AnalysisOptions, ServiceAvailabilityModel};
use dependability::{overlay_model, ParamEstimator};
use netgen::campus::{campus_scenario, CampusParams};
use upsim_core::pipeline::UpsimPipeline;

const SEED: u64 = 2013;

/// Components given synthetic observation traces in the posterior phase.
const OBSERVED_COMPONENTS: usize = 6;
/// Closed up/down sojourns per observed component.
const SOJOURNS: usize = 20;

/// One timed cell of the engine × size × workers matrix.
struct Cell {
    devices: usize,
    engine: &'static str,
    workers: usize,
    samples: usize,
    iters: u32,
    total_ns: u128,
    estimate: f64,
    ci: (f64, f64),
    exact: f64,
    covers: bool,
}

impl Cell {
    fn trials_per_sec(&self) -> f64 {
        let trials = self.samples as f64 * f64::from(self.iters.max(1));
        trials / (self.total_ns as f64 / 1e9)
    }
}

/// The three campus sizes of the scaling experiments (device counts match
/// `CampusParams::device_count`).
fn campuses() -> Vec<(usize, CampusParams)> {
    let shape = |distributions, epd, cpe| CampusParams {
        core: 2,
        distributions,
        edges_per_distribution: epd,
        clients_per_edge: cpe,
        servers: 3,
        dual_homed_edges: false,
    };
    vec![
        (44, shape(2, 2, 8)),
        (358, shape(32, 2, 4)),
        (1222, shape(64, 2, 8)),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_montecarlo.json")
        .to_string();

    let all_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let samples: usize = if smoke { 50_000 } else { 1_000_000 };
    let iters: u32 = if smoke { 1 } else { 3 };
    let mut cells: Vec<Cell> = Vec::new();

    for (devices, params) in campuses() {
        assert_eq!(params.device_count(), devices, "campus shape drifted");
        let (infra, service, mapping) = campus_scenario(params);
        let mut pipeline =
            UpsimPipeline::new(infra, service, mapping).expect("campus models are consistent");
        let run = pipeline.run().expect("campus pipeline runs");
        let model = ServiceAvailabilityModel::from_run(
            pipeline.infrastructure(),
            &run,
            AnalysisOptions::default(),
        );
        let exact = model.availability_bdd();
        // Compiled once per perspective — exactly how the server caches it.
        let program = model.compile_mc();

        for workers in worker_counts(all_cores) {
            // Scalar reference sampler (trial-at-a-time, shared draw stream).
            let start = Instant::now();
            let mut mc = model.monte_carlo(samples, workers, SEED);
            for _ in 1..iters {
                mc = model.monte_carlo(samples, workers, SEED);
            }
            cells.push(cell(
                devices, "scalar", workers, samples, iters, start, mc, exact,
            ));

            // Narrow bit-sliced executor (one 64-trial word at a time).
            let start = Instant::now();
            let mut narrow = program.run_narrow(samples, workers, SEED);
            for _ in 1..iters {
                narrow = program.run_narrow(samples, workers, SEED);
            }
            cells.push(cell(
                devices, "narrow", workers, samples, iters, start, narrow, exact,
            ));

            // Wide kernel (512-trial blocks, runtime SIMD dispatch).
            let start = Instant::now();
            let mut wide = program.run(samples, workers, SEED);
            for _ in 1..iters {
                wide = program.run(samples, workers, SEED);
            }
            assert_eq!(
                wide, narrow,
                "wide kernel diverged from the narrow executor at {devices} devices / {workers} worker(s)"
            );
            cells.push(cell(
                devices, "wide", workers, samples, iters, start, wide, exact,
            ));
        }

        // Posterior phase: the same perspective with synthetic observation
        // traces on a handful of components — traces drawn *from* the
        // authored parameters, so the refined model stays near the
        // authored one and the predictive interval must cover its exact
        // availability. Prices with the block-resampling kernel
        // (unfolded compile: posterior-bearing components keep slots).
        let mut refined = model.clone();
        let estimator = synthetic_estimator(&refined);
        let posteriors = overlay_model(&mut refined, &estimator, false);
        let refined_exact = refined.availability_bdd();
        let posterior_program = refined.compile_mc_unfolded();
        let sampler = posterior_program.posterior_sampler(&posteriors);
        for workers in worker_counts(all_cores) {
            let start = Instant::now();
            let (mut post, mut interval) =
                posterior_program.run_posterior(samples, workers, SEED, &sampler);
            for _ in 1..iters {
                (post, interval) =
                    posterior_program.run_posterior(samples, workers, SEED, &sampler);
            }
            cells.push(Cell {
                devices,
                engine: "posterior",
                workers,
                samples,
                iters,
                total_ns: start.elapsed().as_nanos(),
                estimate: post.estimate,
                ci: interval,
                exact: refined_exact,
                covers: interval.0 <= refined_exact && refined_exact <= interval.1,
            });
        }
    }

    // Both bit-sliced estimates are pure functions of (samples, seed): the
    // worker-count cells must agree bit for bit.
    for (devices, _) in campuses() {
        for engine in ["narrow", "wide", "posterior"] {
            let estimates: Vec<f64> = cells
                .iter()
                .filter(|c| c.devices == devices && c.engine == engine)
                .map(|c| c.estimate)
                .collect();
            assert!(
                estimates.windows(2).all(|w| w[0] == w[1]),
                "{engine} estimates diverged across worker counts at {devices} devices: {estimates:?}"
            );
        }
        // The posterior predictive interval is part of the determinism
        // contract too: bit-identical across the worker sweep.
        let intervals: Vec<(u64, u64)> = cells
            .iter()
            .filter(|c| c.devices == devices && c.engine == "posterior")
            .map(|c| (c.ci.0.to_bits(), c.ci.1.to_bits()))
            .collect();
        assert!(
            intervals.windows(2).all(|w| w[0] == w[1]),
            "posterior intervals diverged across worker counts at {devices} devices"
        );
    }
    // Every engine now draws the same counter-based stream, so every
    // estimate is deterministic for the fixed seed — assert coverage
    // outright across the whole matrix. Posterior cells are exempt from
    // the hard coverage assert: their estimate targets the posterior
    // predictive *mean* E[A(θ)], which differs from the point-refined
    // exact A(θ̂) by a Jensen gap that a tight enough interval correctly
    // excludes — `covers` is recorded for tracking, and a sanity bound
    // keeps the estimate near the refined exact.
    for cell in &cells {
        if cell.engine == "posterior" {
            assert!(
                (cell.estimate - cell.exact).abs() < 5e-3,
                "posterior estimate {} strays from refined exact {} at {} devices",
                cell.estimate,
                cell.exact,
                cell.devices
            );
            continue;
        }
        assert!(
            cell.covers,
            "{} CI {:?} misses exact {} at {} devices",
            cell.engine, cell.ci, cell.exact, cell.devices
        );
    }
    if !smoke {
        for (devices, workers, speedup) in speedups(&cells, "scalar") {
            if devices == 1222 {
                assert!(
                    speedup >= 8.0,
                    "wide kernel must clear 8x over scalar at {devices} devices / {workers} worker(s), got {speedup:.2}x"
                );
            }
        }
        for (devices, workers, speedup) in speedups(&cells, "narrow") {
            if devices == 1222 {
                assert!(
                    speedup >= 2.0,
                    "wide kernel must clear 2x over narrow at {devices} devices / {workers} worker(s), got {speedup:.2}x"
                );
            }
        }
        // Worker scaling: trials/sec must be monotone non-decreasing in
        // workers (5% noise floor) — but only across counts the host can
        // actually run in parallel. A 4-worker column on a 1-CPU host
        // measures oversubscription, not the kernel, so it is recorded
        // (with `host_cpus` for context) and exempted.
        for (devices, _) in campuses() {
            for engine in ["narrow", "wide"] {
                let sweep: Vec<&Cell> = cells
                    .iter()
                    .filter(|c| {
                        c.devices == devices && c.engine == engine && c.workers <= all_cores
                    })
                    .collect();
                for pair in sweep.windows(2) {
                    assert!(
                        pair[1].trials_per_sec() >= 0.95 * pair[0].trials_per_sec(),
                        "{engine} throughput fell from {:.0}/s at {} worker(s) to {:.0}/s at {} \
                         worker(s) on {devices} devices (host_cpus={all_cores})",
                        pair[0].trials_per_sec(),
                        pair[0].workers,
                        pair[1].trials_per_sec(),
                        pair[1].workers,
                    );
                }
            }
        }
    }

    let json = render_json(smoke, all_cores, &cells);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    println!(
        "montecarlo bench → {out} (wide kernel: {})",
        wide_kernel_name()
    );
    println!(
        "{:>8} {:>10} {:>8} {:>9} {:>15} {:>12} {:>7}",
        "devices", "engine", "workers", "samples", "trials/sec", "estimate", "covers"
    );
    for cell in &cells {
        println!(
            "{:>8} {:>10} {:>8} {:>9} {:>15.0} {:>12.6} {:>7}",
            cell.devices,
            cell.engine,
            cell.workers,
            cell.samples,
            cell.trials_per_sec(),
            cell.estimate,
            cell.covers
        );
    }
    for (devices, workers, speedup) in speedups(&cells, "scalar") {
        println!("wide speedup vs scalar @ {devices} devices / {workers} worker(s): {speedup:.2}x");
    }
    for (devices, workers, speedup) in speedups(&cells, "narrow") {
        println!("wide speedup vs narrow @ {devices} devices / {workers} worker(s): {speedup:.2}x");
    }
    for (devices, workers, ratio) in posterior_overhead(&cells) {
        println!(
            "posterior vs point throughput @ {devices} devices / {workers} worker(s): {ratio:.2}x"
        );
    }
    for (devices, workers, scaling, efficiency) in parallel_efficiency(&cells) {
        println!(
            "wide scaling @ {devices} devices: {workers} workers = {scaling:.2}x \
             (efficiency {efficiency:.2}, host_cpus {all_cores})"
        );
    }
}

/// The worker-scaling sweep `{1, 2, 4, 8}` (+ all cores when larger),
/// pinned even on small hosts so the worker-invariance assert always
/// compares several genuinely different splits. Whether a count can be
/// expected to *speed anything up* is a separate question answered by
/// `host_cpus` in the emitted JSON — the scaling asserts only fire for
/// counts the host can actually run in parallel.
fn worker_counts(all_cores: usize) -> Vec<usize> {
    let mut counts = vec![1, 2, 4, 8];
    if all_cores > 8 {
        counts.push(all_cores);
    }
    counts
}

/// Parallel efficiency of every multi-worker wide-kernel cell:
/// `trials/sec at w workers / (w * trials/sec at 1 worker)` per campus —
/// 1.0 is perfect linear scaling, 1/w means added workers bought nothing.
fn parallel_efficiency(cells: &[Cell]) -> Vec<(usize, usize, f64, f64)> {
    let base = |devices| {
        cells
            .iter()
            .find(|c| c.devices == devices && c.engine == "wide" && c.workers == 1)
            .expect("1-worker wide cell present")
            .trials_per_sec()
    };
    cells
        .iter()
        .filter(|c| c.engine == "wide" && c.workers > 1)
        .map(|c| {
            let scaling = c.trials_per_sec() / base(c.devices);
            (c.devices, c.workers, scaling, scaling / c.workers as f64)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn cell(
    devices: usize,
    engine: &'static str,
    workers: usize,
    samples: usize,
    iters: u32,
    start: Instant,
    mc: dependability::montecarlo::MonteCarloResult,
    exact: f64,
) -> Cell {
    Cell {
        devices,
        engine,
        workers,
        samples,
        iters,
        total_ns: start.elapsed().as_nanos(),
        estimate: mc.estimate,
        ci: mc.confidence_95(),
        exact,
        covers: mc.covers(exact),
    }
}

/// Builds a deterministic estimator whose traces are sampled from the
/// model's own authored MTBF/MTTR for the first few components — the
/// refined model stays statistically consistent with the authored one.
fn synthetic_estimator(model: &ServiceAvailabilityModel) -> ParamEstimator {
    let mut state = SEED | 1;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    };
    let mut est = ParamEstimator::new();
    for component in model.components.iter().take(OBSERVED_COMPONENTS) {
        let mut ts = 0u64;
        est.observe(&component.name, true, ts).expect("trace start");
        for _ in 0..SOJOURNS {
            ts += (((-component.mtbf * next().ln()) * 3600.0).ceil() as u64).max(1);
            est.observe(&component.name, false, ts).expect("failure");
            ts += (((-component.mttr * next().ln()) * 3600.0).ceil() as u64).max(1);
            est.observe(&component.name, true, ts).expect("repair");
        }
    }
    est
}

/// Block-resampling cost: posterior vs point wide-kernel trials/sec at
/// equal worker counts, per campus (1.0 = free, lower = overhead).
fn posterior_overhead(cells: &[Cell]) -> Vec<(usize, usize, f64)> {
    let find = |devices, engine, workers| {
        cells
            .iter()
            .find(|c| c.devices == devices && c.engine == engine && c.workers == workers)
            .expect("cell present")
            .trials_per_sec()
    };
    cells
        .iter()
        .filter(|c| c.engine == "posterior")
        .map(|c| {
            (
                c.devices,
                c.workers,
                c.trials_per_sec() / find(c.devices, "wide", c.workers),
            )
        })
        .collect()
}

/// Wide vs `baseline` trials/sec at equal worker counts, per campus.
fn speedups(cells: &[Cell], baseline: &'static str) -> Vec<(usize, usize, f64)> {
    let find = |devices, engine, workers| {
        cells
            .iter()
            .find(|c| c.devices == devices && c.engine == engine && c.workers == workers)
            .expect("cell present")
            .trials_per_sec()
    };
    cells
        .iter()
        .filter(|c| c.engine == "wide")
        .map(|c| {
            (
                c.devices,
                c.workers,
                c.trials_per_sec() / find(c.devices, baseline, c.workers),
            )
        })
        .collect()
}

/// Hand-rolled JSON (numbers + fixed keys only; nothing needs escaping).
fn render_json(smoke: bool, host_cpus: usize, cells: &[Cell]) -> String {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"montecarlo\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"wide_kernel\": \"{}\",\n", wide_kernel_name()));
    json.push_str("  \"pair\": \"t0_0_0 -> srv0 (fetch, 5 atomic services)\",\n");
    json.push_str("  \"results\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"devices\": {}, \"engine\": \"{}\", \"workers\": {}, \"samples\": {}, \
             \"iters\": {}, \"total_ns\": {}, \"trials_per_sec\": {:.0}, \"estimate\": {:.9}, \
             \"ci95\": [{:.9}, {:.9}], \"exact\": {:.9}, \"covers\": {}}}{}\n",
            cell.devices,
            cell.engine,
            cell.workers,
            cell.samples,
            cell.iters,
            cell.total_ns,
            cell.trials_per_sec(),
            cell.estimate,
            cell.ci.0,
            cell.ci.1,
            cell.exact,
            cell.covers,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    for (key, baseline) in [
        ("wide_speedup_vs_scalar", "scalar"),
        ("wide_speedup_vs_narrow", "narrow"),
    ] {
        json.push_str(&format!("  \"{key}\": ["));
        let ratios = speedups(cells, baseline);
        for (i, (devices, workers, speedup)) in ratios.iter().enumerate() {
            json.push_str(&format!(
                "{{\"devices\": {devices}, \"workers\": {workers}, \"speedup\": {speedup:.3}}}{}",
                if i + 1 == ratios.len() { "" } else { ", " }
            ));
        }
        json.push_str("],\n");
    }
    json.push_str("  \"posterior_vs_point\": [");
    let overheads = posterior_overhead(cells);
    for (i, (devices, workers, ratio)) in overheads.iter().enumerate() {
        json.push_str(&format!(
            "{{\"devices\": {devices}, \"workers\": {workers}, \"throughput_ratio\": {ratio:.3}}}{}",
            if i + 1 == overheads.len() { "" } else { ", " }
        ));
    }
    json.push_str("],\n");
    json.push_str("  \"parallel_efficiency\": [");
    let efficiencies = parallel_efficiency(cells);
    for (i, (devices, workers, scaling, efficiency)) in efficiencies.iter().enumerate() {
        json.push_str(&format!(
            "{{\"devices\": {devices}, \"workers\": {workers}, \"scaling\": {scaling:.3}, \
             \"parallel_efficiency\": {efficiency:.3}}}{}",
            if i + 1 == efficiencies.len() {
                ""
            } else {
                ", "
            }
        ));
    }
    json.push_str("]\n");
    json.push_str("}\n");
    json
}
