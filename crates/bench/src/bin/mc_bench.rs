//! Monte-Carlo kernel benchmark: scalar (trial-at-a-time, per-worker RNG
//! streams) vs the compiled bit-sliced kernel (64 trials per `u64`,
//! counter-based draws) on generated campus networks (44, 358, 1222
//! devices), emitted as `BENCH_montecarlo.json` for CI tracking.
//!
//! Usage:
//!   `mc_bench [--smoke] [--out <path>]`
//!
//! Per campus the full "fetch" service model (5 atomic services,
//! client `t0_0_0` → `srv0`) is built once through the pipeline; both
//! engines then estimate the same user-perceived availability at worker
//! counts {1, all cores}. Every cell records trials/sec and whether its
//! 95% CI covers the BDD-exact availability. The bit-sliced estimates
//! are additionally asserted to be bit-identical across worker counts
//! (counter-based draws), and — outside `--smoke` — the bit-sliced
//! kernel must clear an 8× trials/sec speedup over the scalar sampler on
//! the largest campus at equal worker counts.

use std::time::Instant;

use dependability::transform::{AnalysisOptions, ServiceAvailabilityModel};
use netgen::campus::{campus_scenario, CampusParams};
use upsim_core::pipeline::UpsimPipeline;

const SEED: u64 = 2013;

/// One timed cell of the engine × size × workers matrix.
struct Cell {
    devices: usize,
    engine: &'static str,
    workers: usize,
    samples: usize,
    iters: u32,
    total_ns: u128,
    estimate: f64,
    ci: (f64, f64),
    exact: f64,
    covers: bool,
}

impl Cell {
    fn trials_per_sec(&self) -> f64 {
        let trials = self.samples as f64 * f64::from(self.iters.max(1));
        trials / (self.total_ns as f64 / 1e9)
    }
}

/// The three campus sizes of the scaling experiments (device counts match
/// `CampusParams::device_count`).
fn campuses() -> Vec<(usize, CampusParams)> {
    let shape = |distributions, epd, cpe| CampusParams {
        core: 2,
        distributions,
        edges_per_distribution: epd,
        clients_per_edge: cpe,
        servers: 3,
        dual_homed_edges: false,
    };
    vec![
        (44, shape(2, 2, 8)),
        (358, shape(32, 2, 4)),
        (1222, shape(64, 2, 8)),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_montecarlo.json")
        .to_string();

    let all_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let samples: usize = if smoke { 50_000 } else { 1_000_000 };
    let iters: u32 = if smoke { 1 } else { 3 };
    let mut cells: Vec<Cell> = Vec::new();

    for (devices, params) in campuses() {
        assert_eq!(params.device_count(), devices, "campus shape drifted");
        let (infra, service, mapping) = campus_scenario(params);
        let mut pipeline =
            UpsimPipeline::new(infra, service, mapping).expect("campus models are consistent");
        let run = pipeline.run().expect("campus pipeline runs");
        let model = ServiceAvailabilityModel::from_run(
            pipeline.infrastructure(),
            &run,
            AnalysisOptions::default(),
        );
        let exact = model.availability_bdd();
        // Compiled once per perspective — exactly how the server caches it.
        let program = model.compile_mc();

        for workers in worker_counts(all_cores) {
            // Scalar reference sampler (per-worker StdRng streams).
            let start = Instant::now();
            let mut mc = model.monte_carlo(samples, workers, SEED);
            for _ in 1..iters {
                mc = model.monte_carlo(samples, workers, SEED);
            }
            cells.push(cell(
                devices, "scalar", workers, samples, iters, start, mc, exact,
            ));

            // Compiled bit-sliced kernel.
            let start = Instant::now();
            let mut mc = program.run(samples, workers, SEED);
            for _ in 1..iters {
                mc = program.run(samples, workers, SEED);
            }
            cells.push(cell(
                devices,
                "bitsliced",
                workers,
                samples,
                iters,
                start,
                mc,
                exact,
            ));
        }
    }

    // The bit-sliced estimate is a pure function of (samples, seed): the
    // worker-count cells must agree bit for bit.
    for (devices, _) in campuses() {
        let estimates: Vec<f64> = cells
            .iter()
            .filter(|c| c.devices == devices && c.engine == "bitsliced")
            .map(|c| c.estimate)
            .collect();
        assert!(
            estimates.windows(2).all(|w| w[0] == w[1]),
            "bit-sliced estimates diverged across worker counts at {devices} devices: {estimates:?}"
        );
    }
    // Bit-sliced coverage is deterministic for the fixed seed — assert it
    // outright. The scalar sampler's estimate depends on the host's worker
    // count, so it only gets a generous 4.5σ sanity bound here; its 95%
    // coverage flag is still recorded in the JSON.
    for cell in &cells {
        if cell.engine == "bitsliced" {
            assert!(
                cell.covers,
                "bit-sliced CI {:?} misses exact {} at {} devices",
                cell.ci, cell.exact, cell.devices
            );
        } else {
            let sigma = (cell.exact * (1.0 - cell.exact) / cell.samples as f64)
                .sqrt()
                .max(f64::EPSILON);
            assert!(
                (cell.estimate - cell.exact).abs() < 4.5 * sigma,
                "scalar estimate {} strays from exact {} at {} devices",
                cell.estimate,
                cell.exact,
                cell.devices
            );
        }
    }
    if !smoke {
        for (devices, workers, speedup) in speedups(&cells) {
            if devices == 1222 {
                assert!(
                    speedup >= 8.0,
                    "bit-sliced kernel must clear 8x over scalar at {devices} devices / {workers} worker(s), got {speedup:.2}x"
                );
            }
        }
    }

    let json = render_json(smoke, &cells);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    println!("montecarlo bench → {out}");
    println!(
        "{:>8} {:>10} {:>8} {:>9} {:>15} {:>12} {:>7}",
        "devices", "engine", "workers", "samples", "trials/sec", "estimate", "covers"
    );
    for cell in &cells {
        println!(
            "{:>8} {:>10} {:>8} {:>9} {:>15.0} {:>12.6} {:>7}",
            cell.devices,
            cell.engine,
            cell.workers,
            cell.samples,
            cell.trials_per_sec(),
            cell.estimate,
            cell.covers
        );
    }
    for (devices, workers, speedup) in speedups(&cells) {
        println!("bit-sliced speedup @ {devices} devices / {workers} worker(s): {speedup:.2}x");
    }
}

/// `{1, all cores}`, deduplicated on a single-core host.
fn worker_counts(all_cores: usize) -> Vec<usize> {
    if all_cores > 1 {
        vec![1, all_cores]
    } else {
        vec![1]
    }
}

#[allow(clippy::too_many_arguments)]
fn cell(
    devices: usize,
    engine: &'static str,
    workers: usize,
    samples: usize,
    iters: u32,
    start: Instant,
    mc: dependability::montecarlo::MonteCarloResult,
    exact: f64,
) -> Cell {
    Cell {
        devices,
        engine,
        workers,
        samples,
        iters,
        total_ns: start.elapsed().as_nanos(),
        estimate: mc.estimate,
        ci: mc.confidence_95(),
        exact,
        covers: mc.covers(exact),
    }
}

/// Bit-sliced vs scalar trials/sec at equal worker counts, per campus.
fn speedups(cells: &[Cell]) -> Vec<(usize, usize, f64)> {
    let find = |devices, engine, workers| {
        cells
            .iter()
            .find(|c| c.devices == devices && c.engine == engine && c.workers == workers)
            .expect("cell present")
            .trials_per_sec()
    };
    cells
        .iter()
        .filter(|c| c.engine == "bitsliced")
        .map(|c| {
            (
                c.devices,
                c.workers,
                c.trials_per_sec() / find(c.devices, "scalar", c.workers),
            )
        })
        .collect()
}

/// Hand-rolled JSON (numbers + fixed keys only; nothing needs escaping).
fn render_json(smoke: bool, cells: &[Cell]) -> String {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"montecarlo\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str("  \"pair\": \"t0_0_0 -> srv0 (fetch, 5 atomic services)\",\n");
    json.push_str("  \"results\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"devices\": {}, \"engine\": \"{}\", \"workers\": {}, \"samples\": {}, \
             \"iters\": {}, \"total_ns\": {}, \"trials_per_sec\": {:.0}, \"estimate\": {:.9}, \
             \"ci95\": [{:.9}, {:.9}], \"exact\": {:.9}, \"covers\": {}}}{}\n",
            cell.devices,
            cell.engine,
            cell.workers,
            cell.samples,
            cell.iters,
            cell.total_ns,
            cell.trials_per_sec(),
            cell.estimate,
            cell.ci.0,
            cell.ci.1,
            cell.exact,
            cell.covers,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"bitsliced_speedup_vs_scalar\": [");
    let ratios = speedups(cells);
    for (i, (devices, workers, speedup)) in ratios.iter().enumerate() {
        json.push_str(&format!(
            "{{\"devices\": {devices}, \"workers\": {workers}, \"speedup\": {speedup:.3}}}{}",
            if i + 1 == ratios.len() { "" } else { ", " }
        ));
    }
    json.push_str("]\n}\n");
    json
}
