//! Engine throughput benchmark: queries/sec through the resident engine
//! on the USI case study — cold (every perspective evaluated), warm
//! (served from the perspective cache), a two-model contention cell
//! where one shard answers warm queries while a neighbour shard absorbs
//! a continuous UPDATE storm, and a connections × pipelining matrix
//! against the real TCP front-end (idle fleets parked on the reactor
//! while one client drives pipelined queries). Emitted as
//! `BENCH_engine.json` for CI tracking.
//!
//! Usage:
//!   `engine_bench [--smoke] [--out <path>]`
//!
//! The contention cell doubles as an isolation check: the queried
//! shard's epoch must stay 0 and its availabilities bit-identical to
//! the uncontended baseline — a neighbour's update storm may cost some
//! throughput (lock and allocator pressure) but never correctness.
//! The pipelining matrix doubles as the capacity check: the process
//! thread count is recorded at peak connections (a thread-per-connection
//! server could not hold thousands of sockets on a handful of threads),
//! and the full run asserts depth-64 pipelining beats sequential
//! round-trips by ≥ 3×.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use netgen::usi::{
    all_printing_perspectives, perspective_mapping, printing_service, usi_infrastructure,
};
use upsim_server::{Engine, EngineConfig, ModelSnapshot, ModelSpec, UpdateCommand};

/// One timed cell of the scenario × workers matrix.
struct Cell {
    scenario: &'static str,
    workers: usize,
    queries: u64,
    cache_hits: u64,
    total_ns: u128,
}

impl Cell {
    fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / (self.total_ns as f64 / 1e9)
    }
}

/// One timed cell of the connections × pipelining matrix: `queries` warm
/// queries driven at window `depth` over one connection while `idle`
/// other connections sit parked on the reactor.
struct PipeCell {
    idle: usize,
    depth: usize,
    queries: u64,
    total_ns: u128,
}

impl PipeCell {
    fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / (self.total_ns as f64 / 1e9)
    }
}

fn usi_spec(name: &str) -> ModelSpec {
    ModelSpec {
        name: name.to_string(),
        snapshot: ModelSnapshot::new(usi_infrastructure(), printing_service())
            .expect("USI models are consistent"),
        mapper: Arc::new(|_, client, provider| perspective_mapping(client, provider)),
    }
}

fn two_model_engine(workers: usize) -> Engine {
    Engine::with_models(
        vec![usi_spec("served"), usi_spec("churned")],
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
    )
    .expect("two distinct names register")
}

fn pairs() -> Vec<(String, String)> {
    all_printing_perspectives()
        .iter()
        .map(|(c, p, _)| (c.clone(), p.clone()))
        .collect()
}

/// Drives `rounds` full sweeps of every USI perspective through one
/// shard, returning (queries, cache hits, availabilities of the last
/// sweep in pair order).
fn sweep(
    engine: &Engine,
    model: Option<&str>,
    pairs: &[(String, String)],
    rounds: u32,
) -> (u64, u64, Vec<u64>) {
    let mut queries = 0u64;
    let mut hits = 0u64;
    let mut last = Vec::new();
    for round in 0..rounds {
        if round + 1 == rounds {
            last = Vec::with_capacity(pairs.len());
        }
        for (client, provider) in pairs {
            let (entry, hit) = engine
                .query_traced_on(model, client, provider)
                .expect("USI perspective evaluates");
            queries += 1;
            hits += u64::from(hit);
            if round + 1 == rounds {
                last.push(entry.availability.to_bits());
            }
        }
    }
    (queries, hits, last)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_engine.json")
        .to_string();

    let all_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cold_iters: u32 = if smoke { 1 } else { 3 };
    let warm_rounds: u32 = if smoke { 20 } else { 400 };
    let the_pairs = pairs();
    assert_eq!(the_pairs.len(), 45);
    let mut cells: Vec<Cell> = Vec::new();

    for workers in worker_counts(all_cores) {
        // Cold: every perspective evaluated through the pipeline (a
        // fresh engine per iteration so nothing is resident).
        let mut queries = 0u64;
        let mut hits = 0u64;
        let start = Instant::now();
        for _ in 0..cold_iters {
            let engine = Engine::new(
                ModelSnapshot::new(usi_infrastructure(), printing_service())
                    .expect("USI models are consistent"),
                EngineConfig {
                    workers,
                    mapper: Arc::new(|_, client, provider| perspective_mapping(client, provider)),
                    ..EngineConfig::default()
                },
            );
            let (q, h, _) = sweep(&engine, None, &the_pairs, 1);
            queries += q;
            hits += h;
            engine.shutdown();
        }
        cells.push(Cell {
            scenario: "cold",
            workers,
            queries,
            cache_hits: hits,
            total_ns: start.elapsed().as_nanos(),
        });

        // Warm: the same sweep against a resident, fully cached engine.
        let engine = two_model_engine(workers);
        sweep(&engine, Some("served"), &the_pairs, 1); // prime the cache
        let start = Instant::now();
        let (queries, hits, _) = sweep(&engine, Some("served"), &the_pairs, warm_rounds);
        cells.push(Cell {
            scenario: "warm",
            workers,
            queries,
            cache_hits: hits,
            total_ns: start.elapsed().as_nanos(),
        });
        engine.shutdown();
    }

    // Two-model contention: the served shard answers the same warm sweep
    // while the churned shard absorbs a disconnect/connect storm from a
    // second thread. Baseline first (same engine shape, no storm) so the
    // ratio isolates the storm's cost.
    let engine = two_model_engine(all_cores);
    sweep(&engine, Some("served"), &the_pairs, 1);
    let start = Instant::now();
    let (queries, hits, baseline_bits) = sweep(&engine, Some("served"), &the_pairs, warm_rounds);
    cells.push(Cell {
        scenario: "two-model-baseline",
        workers: all_cores,
        queries,
        cache_hits: hits,
        total_ns: start.elapsed().as_nanos(),
    });

    let stop = Arc::new(AtomicBool::new(false));
    let storm_engine = engine.clone();
    let storm_stop = Arc::clone(&stop);
    let storm = std::thread::spawn(move || {
        let mut updates = 0u64;
        while !storm_stop.load(Ordering::Relaxed) {
            storm_engine
                .update_on(
                    Some("churned"),
                    UpdateCommand::Disconnect {
                        a: "d1".into(),
                        b: "c2".into(),
                    },
                )
                .expect("storm disconnect");
            storm_engine
                .update_on(
                    Some("churned"),
                    UpdateCommand::Connect {
                        a: "d1".into(),
                        b: "c2".into(),
                    },
                )
                .expect("storm reconnect");
            updates += 2;
        }
        updates
    });
    let start = Instant::now();
    let (queries, hits, contended_bits) = sweep(&engine, Some("served"), &the_pairs, warm_rounds);
    let contended_ns = start.elapsed().as_nanos();
    stop.store(true, Ordering::Relaxed);
    let storm_updates = storm.join().expect("storm thread");
    cells.push(Cell {
        scenario: "two-model-contended",
        workers: all_cores,
        queries,
        cache_hits: hits,
        total_ns: contended_ns,
    });

    // Isolation is a hard invariant, whatever the throughput: the storm
    // never touched the served shard.
    assert_eq!(
        engine.epoch_of("served"),
        Ok(0),
        "update storm leaked into the served shard's epoch"
    );
    assert!(
        engine.epoch_of("churned").expect("churned resolves") >= storm_updates,
        "storm updates went missing"
    );
    assert_eq!(
        baseline_bits, contended_bits,
        "served availabilities drifted under a neighbour's update storm"
    );
    engine.shutdown();

    // Warm sweeps are all cache hits after priming.
    for cell in &cells {
        if cell.scenario != "cold" {
            assert_eq!(
                cell.cache_hits, cell.queries,
                "{}: warm sweep missed the cache",
                cell.scenario
            );
        }
    }

    let contention_ratio = {
        let find = |scenario: &str| {
            cells
                .iter()
                .find(|c| c.scenario == scenario)
                .expect("cell present")
                .queries_per_sec()
        };
        find("two-model-contended") / find("two-model-baseline")
    };

    // Connections × pipelining against the real TCP front-end. Smoke
    // keeps the fleet small enough for CI's default fd limit; the full
    // run parks 8192 sockets on the reactor.
    let idle_counts: &[usize] = if smoke {
        &[1, 64, 256]
    } else {
        &[1, 64, 1024, 8192]
    };
    let depths = [1usize, 8, 64];
    let pipe_queries: u64 = if smoke { 2_000 } else { 20_000 };
    let (pipe_cells, threads_at_peak) = pipeline_matrix(idle_counts, &depths, pipe_queries);

    let pipelined_speedup = {
        let max_idle = *idle_counts.last().expect("at least one idle count");
        let find = |depth: usize| {
            pipe_cells
                .iter()
                .find(|c| c.idle == max_idle && c.depth == depth)
                .expect("matrix cell present")
                .queries_per_sec()
        };
        find(64) / find(1)
    };
    if !smoke {
        assert!(
            pipelined_speedup >= 3.0,
            "depth-64 pipelining only {pipelined_speedup:.2}x over sequential round-trips"
        );
    }

    let json = render_json(
        smoke,
        &cells,
        storm_updates,
        contention_ratio,
        &pipe_cells,
        threads_at_peak,
        pipelined_speedup,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    println!("engine bench → {out}");
    println!(
        "{:>20} {:>8} {:>9} {:>10} {:>15}",
        "scenario", "workers", "queries", "hits", "queries/sec"
    );
    for cell in &cells {
        println!(
            "{:>20} {:>8} {:>9} {:>10} {:>15.0}",
            cell.scenario,
            cell.workers,
            cell.queries,
            cell.cache_hits,
            cell.queries_per_sec()
        );
    }
    println!(
        "contended/baseline throughput ratio: {contention_ratio:.3} ({storm_updates} storm updates absorbed)"
    );
    println!(
        "{:>20} {:>8} {:>9} {:>15}",
        "idle conns", "depth", "queries", "queries/sec"
    );
    for cell in &pipe_cells {
        println!(
            "{:>20} {:>8} {:>9} {:>15.0}",
            cell.idle,
            cell.depth,
            cell.queries,
            cell.queries_per_sec()
        );
    }
    println!(
        "depth-64 pipelining speedup at peak fleet: {pipelined_speedup:.2}x \
         ({threads_at_peak} process threads at peak connections)"
    );
}

/// Runs the connections × pipelining matrix: one server on an ephemeral
/// port, an idle fleet grown to each target size, and one active client
/// driving `queries` warm `QUERY` lines per depth with a sliding window.
/// Returns the timed cells plus the process thread count observed at
/// peak fleet size — the "no thread per connection" evidence.
fn pipeline_matrix(idle_counts: &[usize], depths: &[usize], queries: u64) -> (Vec<PipeCell>, u64) {
    let engine = Engine::new(
        ModelSnapshot::new(usi_infrastructure(), printing_service())
            .expect("USI models are consistent"),
        EngineConfig {
            workers: 2,
            mapper: Arc::new(|_, client, provider| perspective_mapping(client, provider)),
            ..EngineConfig::default()
        },
    );
    // The fleet plus the active client must fit under the connection cap,
    // or the last socket is shed with `ERR server busy`.
    let max_idle = idle_counts.iter().copied().max().unwrap_or(0);
    let server = upsim_server::serve_with(
        engine,
        "127.0.0.1:0",
        upsim_server::ServerConfig {
            max_connections: max_idle + 16,
            ..upsim_server::ServerConfig::default()
        },
    )
    .expect("bind bench server");
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect active client");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;

    // Prime the cache so every timed query is a warm hit.
    writer.write_all(b"QUERY t1 p1\n").expect("prime query");
    writer.flush().expect("prime flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("prime response");
    assert!(line.starts_with("OK query "), "priming failed: {line}");

    let mut idle: Vec<TcpStream> = Vec::new();
    let mut cells = Vec::new();
    let mut threads_at_peak = 0u64;
    for &target in idle_counts {
        while idle.len() < target {
            idle.push(TcpStream::connect(addr).expect("open idle connection"));
        }
        // Wait until the reactor has registered the whole fleet (+1 for
        // the active client) before timing anything.
        let deadline = Instant::now() + Duration::from_secs(60);
        while (server.metrics().open_connections.load(Ordering::Relaxed) as usize) < target + 1 {
            assert!(
                Instant::now() < deadline,
                "reactor absorbed only {} of {} connections",
                server.metrics().open_connections.load(Ordering::Relaxed),
                target + 1
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        threads_at_peak = process_thread_count();
        for &depth in depths {
            let total_ns = pipelined_sweep(&mut reader, &mut writer, depth, queries);
            cells.push(PipeCell {
                idle: target,
                depth,
                queries,
                total_ns,
            });
        }
    }

    drop(idle);
    drop(reader);
    drop(writer);
    server.stop();
    server.join();
    (cells, threads_at_peak)
}

/// Drives `count` warm `QUERY t1 p1` lines in bursts of `depth` — the
/// protocol's pipelining shape (N commands written before N replies are
/// read, one write per burst); returns the elapsed nanoseconds.
fn pipelined_sweep(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    depth: usize,
    count: u64,
) -> u128 {
    const REQUEST: &[u8] = b"QUERY t1 p1\n";
    let burst_buf: Vec<u8> = REQUEST.repeat(depth);
    let start = Instant::now();
    let mut done = 0u64;
    let mut line = String::new();
    while done < count {
        let burst = depth.min((count - done) as usize);
        writer
            .write_all(&burst_buf[..burst * REQUEST.len()])
            .expect("send burst");
        writer.flush().expect("flush burst");
        for _ in 0..burst {
            line.clear();
            let n = reader.read_line(&mut line).expect("read response");
            assert!(n > 0, "server closed mid-pipeline");
            assert!(line.starts_with("OK query "), "unexpected reply: {line}");
        }
        done += burst as u64;
    }
    start.elapsed().as_nanos()
}

/// The process's live thread count from `/proc/self/status` (0 where the
/// file is unavailable) — with thousands of connections open this stays
/// at main + reactor + workers.
fn process_thread_count() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// `{1, all cores}`, deduplicated on a single-core host.
fn worker_counts(all_cores: usize) -> Vec<usize> {
    if all_cores > 1 {
        vec![1, all_cores]
    } else {
        vec![1]
    }
}

/// Hand-rolled JSON (numbers + fixed keys only; nothing needs escaping).
#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    cells: &[Cell],
    storm_updates: u64,
    contention_ratio: f64,
    pipe_cells: &[PipeCell],
    threads_at_peak: u64,
    pipelined_speedup: f64,
) -> String {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"engine\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"workload\": \"45 USI perspectives per sweep (printS)\",\n");
    json.push_str("  \"results\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"workers\": {}, \"queries\": {}, \"cache_hits\": {}, \
             \"total_ns\": {}, \"queries_per_sec\": {:.0}}}{}\n",
            cell.scenario,
            cell.workers,
            cell.queries,
            cell.cache_hits,
            cell.total_ns,
            cell.queries_per_sec(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"storm_updates\": {storm_updates},\n"));
    json.push_str(&format!(
        "  \"contended_vs_baseline\": {contention_ratio:.3},\n"
    ));
    json.push_str("  \"pipelining\": [\n");
    for (i, cell) in pipe_cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"idle_connections\": {}, \"depth\": {}, \"queries\": {}, \"total_ns\": {}, \
             \"queries_per_sec\": {:.0}}}{}\n",
            cell.idle,
            cell.depth,
            cell.queries,
            cell.total_ns,
            cell.queries_per_sec(),
            if i + 1 == pipe_cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"threads_at_peak_connections\": {threads_at_peak},\n"
    ));
    json.push_str(&format!(
        "  \"pipelined_speedup_depth64\": {pipelined_speedup:.2}\n"
    ));
    json.push_str("}\n");
    json
}
