//! Engine throughput benchmark: queries/sec through the resident engine
//! on the USI case study — cold (every perspective evaluated), warm
//! (served from the perspective cache), and a two-model contention cell
//! where one shard answers warm queries while a neighbour shard absorbs
//! a continuous UPDATE storm. Emitted as `BENCH_engine.json` for CI
//! tracking.
//!
//! Usage:
//!   `engine_bench [--smoke] [--out <path>]`
//!
//! The contention cell doubles as an isolation check: the queried
//! shard's epoch must stay 0 and its availabilities bit-identical to
//! the uncontended baseline — a neighbour's update storm may cost some
//! throughput (lock and allocator pressure) but never correctness.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use netgen::usi::{
    all_printing_perspectives, perspective_mapping, printing_service, usi_infrastructure,
};
use upsim_server::{Engine, EngineConfig, ModelSnapshot, ModelSpec, UpdateCommand};

/// One timed cell of the scenario × workers matrix.
struct Cell {
    scenario: &'static str,
    workers: usize,
    queries: u64,
    cache_hits: u64,
    total_ns: u128,
}

impl Cell {
    fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / (self.total_ns as f64 / 1e9)
    }
}

fn usi_spec(name: &str) -> ModelSpec {
    ModelSpec {
        name: name.to_string(),
        snapshot: ModelSnapshot::new(usi_infrastructure(), printing_service())
            .expect("USI models are consistent"),
        mapper: Arc::new(|_, client, provider| perspective_mapping(client, provider)),
    }
}

fn two_model_engine(workers: usize) -> Engine {
    Engine::with_models(
        vec![usi_spec("served"), usi_spec("churned")],
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
    )
    .expect("two distinct names register")
}

fn pairs() -> Vec<(String, String)> {
    all_printing_perspectives()
        .iter()
        .map(|(c, p, _)| (c.clone(), p.clone()))
        .collect()
}

/// Drives `rounds` full sweeps of every USI perspective through one
/// shard, returning (queries, cache hits, availabilities of the last
/// sweep in pair order).
fn sweep(
    engine: &Engine,
    model: Option<&str>,
    pairs: &[(String, String)],
    rounds: u32,
) -> (u64, u64, Vec<u64>) {
    let mut queries = 0u64;
    let mut hits = 0u64;
    let mut last = Vec::new();
    for round in 0..rounds {
        if round + 1 == rounds {
            last = Vec::with_capacity(pairs.len());
        }
        for (client, provider) in pairs {
            let (entry, hit) = engine
                .query_traced_on(model, client, provider)
                .expect("USI perspective evaluates");
            queries += 1;
            hits += u64::from(hit);
            if round + 1 == rounds {
                last.push(entry.availability.to_bits());
            }
        }
    }
    (queries, hits, last)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_engine.json")
        .to_string();

    let all_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cold_iters: u32 = if smoke { 1 } else { 3 };
    let warm_rounds: u32 = if smoke { 20 } else { 400 };
    let the_pairs = pairs();
    assert_eq!(the_pairs.len(), 45);
    let mut cells: Vec<Cell> = Vec::new();

    for workers in worker_counts(all_cores) {
        // Cold: every perspective evaluated through the pipeline (a
        // fresh engine per iteration so nothing is resident).
        let mut queries = 0u64;
        let mut hits = 0u64;
        let start = Instant::now();
        for _ in 0..cold_iters {
            let engine = Engine::new(
                ModelSnapshot::new(usi_infrastructure(), printing_service())
                    .expect("USI models are consistent"),
                EngineConfig {
                    workers,
                    mapper: Arc::new(|_, client, provider| perspective_mapping(client, provider)),
                    ..EngineConfig::default()
                },
            );
            let (q, h, _) = sweep(&engine, None, &the_pairs, 1);
            queries += q;
            hits += h;
            engine.shutdown();
        }
        cells.push(Cell {
            scenario: "cold",
            workers,
            queries,
            cache_hits: hits,
            total_ns: start.elapsed().as_nanos(),
        });

        // Warm: the same sweep against a resident, fully cached engine.
        let engine = two_model_engine(workers);
        sweep(&engine, Some("served"), &the_pairs, 1); // prime the cache
        let start = Instant::now();
        let (queries, hits, _) = sweep(&engine, Some("served"), &the_pairs, warm_rounds);
        cells.push(Cell {
            scenario: "warm",
            workers,
            queries,
            cache_hits: hits,
            total_ns: start.elapsed().as_nanos(),
        });
        engine.shutdown();
    }

    // Two-model contention: the served shard answers the same warm sweep
    // while the churned shard absorbs a disconnect/connect storm from a
    // second thread. Baseline first (same engine shape, no storm) so the
    // ratio isolates the storm's cost.
    let engine = two_model_engine(all_cores);
    sweep(&engine, Some("served"), &the_pairs, 1);
    let start = Instant::now();
    let (queries, hits, baseline_bits) = sweep(&engine, Some("served"), &the_pairs, warm_rounds);
    cells.push(Cell {
        scenario: "two-model-baseline",
        workers: all_cores,
        queries,
        cache_hits: hits,
        total_ns: start.elapsed().as_nanos(),
    });

    let stop = Arc::new(AtomicBool::new(false));
    let storm_engine = engine.clone();
    let storm_stop = Arc::clone(&stop);
    let storm = std::thread::spawn(move || {
        let mut updates = 0u64;
        while !storm_stop.load(Ordering::Relaxed) {
            storm_engine
                .update_on(
                    Some("churned"),
                    UpdateCommand::Disconnect {
                        a: "d1".into(),
                        b: "c2".into(),
                    },
                )
                .expect("storm disconnect");
            storm_engine
                .update_on(
                    Some("churned"),
                    UpdateCommand::Connect {
                        a: "d1".into(),
                        b: "c2".into(),
                    },
                )
                .expect("storm reconnect");
            updates += 2;
        }
        updates
    });
    let start = Instant::now();
    let (queries, hits, contended_bits) = sweep(&engine, Some("served"), &the_pairs, warm_rounds);
    let contended_ns = start.elapsed().as_nanos();
    stop.store(true, Ordering::Relaxed);
    let storm_updates = storm.join().expect("storm thread");
    cells.push(Cell {
        scenario: "two-model-contended",
        workers: all_cores,
        queries,
        cache_hits: hits,
        total_ns: contended_ns,
    });

    // Isolation is a hard invariant, whatever the throughput: the storm
    // never touched the served shard.
    assert_eq!(
        engine.epoch_of("served"),
        Ok(0),
        "update storm leaked into the served shard's epoch"
    );
    assert!(
        engine.epoch_of("churned").expect("churned resolves") >= storm_updates,
        "storm updates went missing"
    );
    assert_eq!(
        baseline_bits, contended_bits,
        "served availabilities drifted under a neighbour's update storm"
    );
    engine.shutdown();

    // Warm sweeps are all cache hits after priming.
    for cell in &cells {
        if cell.scenario != "cold" {
            assert_eq!(
                cell.cache_hits, cell.queries,
                "{}: warm sweep missed the cache",
                cell.scenario
            );
        }
    }

    let contention_ratio = {
        let find = |scenario: &str| {
            cells
                .iter()
                .find(|c| c.scenario == scenario)
                .expect("cell present")
                .queries_per_sec()
        };
        find("two-model-contended") / find("two-model-baseline")
    };

    let json = render_json(smoke, &cells, storm_updates, contention_ratio);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    println!("engine bench → {out}");
    println!(
        "{:>20} {:>8} {:>9} {:>10} {:>15}",
        "scenario", "workers", "queries", "hits", "queries/sec"
    );
    for cell in &cells {
        println!(
            "{:>20} {:>8} {:>9} {:>10} {:>15.0}",
            cell.scenario,
            cell.workers,
            cell.queries,
            cell.cache_hits,
            cell.queries_per_sec()
        );
    }
    println!(
        "contended/baseline throughput ratio: {contention_ratio:.3} ({storm_updates} storm updates absorbed)"
    );
}

/// `{1, all cores}`, deduplicated on a single-core host.
fn worker_counts(all_cores: usize) -> Vec<usize> {
    if all_cores > 1 {
        vec![1, all_cores]
    } else {
        vec![1]
    }
}

/// Hand-rolled JSON (numbers + fixed keys only; nothing needs escaping).
fn render_json(smoke: bool, cells: &[Cell], storm_updates: u64, contention_ratio: f64) -> String {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"engine\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"workload\": \"45 USI perspectives per sweep (printS)\",\n");
    json.push_str("  \"results\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"workers\": {}, \"queries\": {}, \"cache_hits\": {}, \
             \"total_ns\": {}, \"queries_per_sec\": {:.0}}}{}\n",
            cell.scenario,
            cell.workers,
            cell.queries,
            cell.cache_hits,
            cell.total_ns,
            cell.queries_per_sec(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"storm_updates\": {storm_updates},\n"));
    json.push_str(&format!(
        "  \"contended_vs_baseline\": {contention_ratio:.3}\n"
    ));
    json.push_str("}\n");
    json
}
