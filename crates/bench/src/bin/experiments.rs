//! Regenerates every table and figure of the paper (experiments E1–E15).
//!
//! Usage:
//!   experiments            # run all
//!   experiments E5 E8      # run a selection

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<String> = args.iter().map(|a| a.to_uppercase()).collect();
    println!("upsim-rs experiment suite — reproduces Dittrich et al., IPPS 2013");
    println!("==================================================================\n");
    for (id, run) in upsim_bench::experiments::all() {
        if !selected.is_empty() && !selected.iter().any(|s| s == id) {
            continue;
        }
        println!("{}", run());
        println!("------------------------------------------------------------------\n");
    }
}
