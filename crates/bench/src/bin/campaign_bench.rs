//! Campaign fan-out benchmark: scenarios/sec for a `kill-each-component`
//! campaign over generated campus networks of 44, 358, and 1222 devices,
//! at 1 worker and all cores. Emitted as `BENCH_campaign.json` for CI
//! tracking.
//!
//! Usage:
//!   `campaign_bench [--smoke] [--out <path>]`
//!
//! `--smoke` drops the 1222-device size so CI stays fast.
//!
//! Two hard invariants ride along, whatever the throughput:
//!
//! * isolation — after every campaign the live shard's epoch is still 0
//!   and its perspective cache still empty (a campaign works on pinned
//!   copies, never the shard),
//! * determinism — the JSON report of the 1-worker run is byte-identical
//!   to the all-cores run for the same size and spec.

use std::time::Instant;

use netgen::campus::{campus_scenario, CampusParams};
use upsim_server::{CampaignSpec, Engine, EngineConfig, ModelSnapshot};

/// One timed cell of the devices × workers matrix.
struct Cell {
    devices: usize,
    workers: usize,
    scenarios: usize,
    perspectives: usize,
    total_ns: u128,
}

impl Cell {
    fn scenarios_per_sec(&self) -> f64 {
        self.scenarios as f64 / (self.total_ns as f64 / 1e9)
    }
}

/// The benchmark sizes: distribution switches × edges per distribution ×
/// clients per edge, with 2 cores, 3 servers, and a server switch.
fn sizes(smoke: bool) -> Vec<CampusParams> {
    let shape = |distributions, edges_per_distribution, clients_per_edge| CampusParams {
        core: 2,
        distributions,
        edges_per_distribution,
        clients_per_edge,
        servers: 3,
        dual_homed_edges: false,
    };
    let mut sizes = vec![shape(2, 2, 8), shape(32, 2, 4)]; // 44, 358 devices
    if !smoke {
        sizes.push(shape(64, 2, 8)); // 1222 devices
    }
    sizes
}

/// Four perspectives spread over distinct edge trees — valid for every
/// benchmark shape, and small enough that the baseline phase does not
/// dominate the fan-out being measured.
const SPEC: &str =
    "kill-each-component pairs:t0_0_0:srv0,t0_1_0:srv1,t1_0_0:srv2,t1_1_0:srv0 top:5";

fn campus_engine(params: CampusParams, workers: usize) -> Engine {
    let (infrastructure, service, _) = campus_scenario(params);
    let snapshot =
        ModelSnapshot::new(infrastructure, service).expect("campus models are consistent");
    Engine::new(
        snapshot,
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
    )
}

/// `{1, all cores}`, deduplicated on a single-core host.
fn worker_counts(all_cores: usize) -> Vec<usize> {
    if all_cores > 1 {
        vec![1, all_cores]
    } else {
        vec![1]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_campaign.json")
        .to_string();

    let all_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut cells: Vec<Cell> = Vec::new();

    for params in sizes(smoke) {
        let devices = params.device_count();
        // One report per worker count; all must be byte-identical.
        let mut reports: Vec<String> = Vec::new();
        for workers in worker_counts(all_cores) {
            let engine = campus_engine(params, workers);
            let spec = CampaignSpec::parse(SPEC).expect("benchmark spec parses");
            let start = Instant::now();
            let report = engine
                .campaign(spec, |_, _| {})
                .expect("campus campaign runs");
            let total_ns = start.elapsed().as_nanos();
            assert_eq!(report.scenarios, devices, "one kill per device");

            // Isolation: the campaign pinned a snapshot and worked on
            // copies — the live shard never noticed.
            let stats = engine.stats();
            assert_eq!(stats.epoch, 0, "campaign must not bump the epoch");
            assert_eq!(stats.cache_len, 0, "campaign must not touch the cache");
            assert_eq!(stats.campaigns_run, 1);
            assert_eq!(stats.scenarios_evaluated, report.scenarios as u64);

            cells.push(Cell {
                devices,
                workers,
                scenarios: report.scenarios,
                perspectives: report.perspectives,
                total_ns,
            });
            reports.push(report.render_json());
            engine.shutdown();
        }
        for other in &reports[1..] {
            assert_eq!(
                &reports[0], other,
                "{devices}-device report drifted across worker counts"
            );
        }
    }

    let json = render_json(smoke, &cells);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    println!("campaign bench → {out}");
    println!(
        "{:>8} {:>8} {:>10} {:>13} {:>15}",
        "devices", "workers", "scenarios", "perspectives", "scenarios/sec"
    );
    for cell in &cells {
        println!(
            "{:>8} {:>8} {:>10} {:>13} {:>15.1}",
            cell.devices,
            cell.workers,
            cell.scenarios,
            cell.perspectives,
            cell.scenarios_per_sec()
        );
    }
}

/// Hand-rolled JSON (numbers + fixed keys only; nothing needs escaping).
fn render_json(smoke: bool, cells: &[Cell]) -> String {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"campaign\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"spec\": \"{SPEC}\",\n"));
    json.push_str("  \"results\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"devices\": {}, \"workers\": {}, \"scenarios\": {}, \"perspectives\": {}, \
             \"total_ns\": {}, \"scenarios_per_sec\": {:.1}}}{}\n",
            cell.devices,
            cell.workers,
            cell.scenarios,
            cell.perspectives,
            cell.total_ns,
            cell.scenarios_per_sec(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    json
}
