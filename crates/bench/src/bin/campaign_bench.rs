//! Campaign fan-out benchmark, emitted as `BENCH_campaign.json` for CI
//! tracking. Two phases per campus size (44, 358, and 1222 devices):
//!
//! * `kill` — the structural `kill-each-component` campaign (one
//!   scenario per device, BDD-exact pricing),
//! * `crn` / `independent` — an `mc:`-priced `scale-mtbf` sweep (5
//!   device classes × 8 factors = 40 parametric scenarios), priced once
//!   under common-random-number reuse (the default) and once with
//!   `independent-seeds` per-scenario draw streams.
//!
//! Usage:
//!   `campaign_bench [--smoke] [--out <path>]`
//!
//! `--smoke` drops the 1222-device size and shrinks the MC sample count
//! so CI stays fast.
//!
//! Hard invariants ride along, whatever the throughput:
//!
//! * isolation — after every campaign the live shard's epoch is still 0
//!   and its perspective cache still empty (a campaign works on pinned
//!   copies, never the shard),
//! * determinism — for every phase the JSON report of the 1-worker run
//!   is byte-identical to every other worker count in the {1, 2, 4, 8}
//!   sweep for the same size and spec
//!   (for the `mc:` sweeps this is the CRN/independent determinism
//!   contract: estimates are pure functions of the spec, never of the
//!   host's core count),
//! * reuse — the CRN sweep must actually hit the shared draw table
//!   (`campaign_crn_reuse > 0`) while the independent sweep never does.
//!
//! The JSON records `host_cpus` and per-phase `parallel_efficiency`
//! (throughput scaling / workers). Outside `--smoke` the CRN sweep must
//! additionally clear a 2× scenarios/sec speedup over the
//! independent-seeds sweep on the 358-device campus at equal worker
//! counts, and scenarios/sec must be monotone non-decreasing in workers
//! (5% noise floor) across every count the host can truly run in
//! parallel (`workers <= host_cpus`).

use std::time::Instant;

use netgen::campus::{campus_scenario, CampusParams};
use upsim_server::{CampaignSpec, Engine, EngineConfig, ModelSnapshot};

/// One timed cell of the phase × devices × workers matrix.
struct Cell {
    phase: &'static str,
    devices: usize,
    workers: usize,
    scenarios: usize,
    perspectives: usize,
    total_ns: u128,
    mc_trials: u64,
    crn_reuse: u64,
}

impl Cell {
    fn scenarios_per_sec(&self) -> f64 {
        self.scenarios as f64 / (self.total_ns as f64 / 1e9)
    }
}

/// The benchmark sizes: distribution switches × edges per distribution ×
/// clients per edge, with 2 cores, 3 servers, and a server switch.
fn sizes(smoke: bool) -> Vec<CampusParams> {
    let shape = |distributions, edges_per_distribution, clients_per_edge| CampusParams {
        core: 2,
        distributions,
        edges_per_distribution,
        clients_per_edge,
        servers: 3,
        dual_homed_edges: false,
    };
    let mut sizes = vec![shape(2, 2, 8), shape(32, 2, 4)]; // 44, 358 devices
    if !smoke {
        sizes.push(shape(64, 2, 8)); // 1222 devices
    }
    sizes
}

/// Four perspectives spread over distinct edge trees — valid for every
/// benchmark shape, and small enough that the baseline phase does not
/// dominate the fan-out being measured.
const PAIRS: &str = "pairs:t0_0_0:srv0,t0_1_0:srv1,t1_0_0:srv2,t1_1_0:srv0";

/// Structural campaign: one kill scenario per device, BDD-exact pricing.
fn kill_spec() -> String {
    format!("kill-each-component {PAIRS} top:5")
}

/// Parametric sweep: 5 campus device classes × 8 MTBF factors = 40
/// scenarios, Monte-Carlo priced. `crn` toggles the shared-baseline
/// draw stream (the default) vs per-scenario independent seeds.
fn sweep_spec(samples: usize, crn: bool) -> String {
    let tail = if crn { "" } else { " independent-seeds" };
    format!("scale-mtbf:*:0.25,0.5,0.75,0.9,1.1,1.25,1.5,2 {PAIRS} mc:{samples}:2013 top:5{tail}")
}

fn campus_engine(params: CampusParams, workers: usize) -> Engine {
    let (infrastructure, service, _) = campus_scenario(params);
    let snapshot =
        ModelSnapshot::new(infrastructure, service).expect("campus models are consistent");
    Engine::new(
        snapshot,
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
    )
}

/// The worker-scaling sweep `{1, 2, 4, 8}` (+ all cores when larger),
/// pinned even on small hosts so the byte-identical-report assert always
/// compares several genuinely different fan-out schedules. `host_cpus`
/// in the emitted JSON says which of these counts the host could truly
/// run in parallel.
fn worker_counts(all_cores: usize) -> Vec<usize> {
    let mut counts = vec![1, 2, 4, 8];
    if all_cores > 8 {
        counts.push(all_cores);
    }
    counts
}

/// Parallel efficiency of every multi-worker cell:
/// `scenarios/sec at w workers / (w * scenarios/sec at 1 worker)` per
/// phase and campus — 1.0 is perfect linear scaling.
fn parallel_efficiency(cells: &[Cell]) -> Vec<(&'static str, usize, usize, f64, f64)> {
    let base = |phase, devices| {
        cells
            .iter()
            .find(|c| c.phase == phase && c.devices == devices && c.workers == 1)
            .expect("1-worker cell present")
            .scenarios_per_sec()
    };
    cells
        .iter()
        .filter(|c| c.workers > 1)
        .map(|c| {
            let scaling = c.scenarios_per_sec() / base(c.phase, c.devices);
            (
                c.phase,
                c.devices,
                c.workers,
                scaling,
                scaling / c.workers as f64,
            )
        })
        .collect()
}

/// Runs `spec` once per worker count on a fresh engine, asserting the
/// isolation and byte-identical-report invariants, and returns the cells.
fn run_phase(
    phase: &'static str,
    params: CampusParams,
    spec_text: &str,
    all_cores: usize,
    expected_scenarios: Option<usize>,
    cells: &mut Vec<Cell>,
) {
    let devices = params.device_count();
    let mut reports: Vec<String> = Vec::new();
    for workers in worker_counts(all_cores) {
        let engine = campus_engine(params, workers);
        let spec = CampaignSpec::parse(spec_text).expect("benchmark spec parses");
        let crn = spec.mc.is_some() && spec.crn;
        let mc = spec.mc.is_some();
        let start = Instant::now();
        let report = engine
            .campaign(spec, |_, _| {})
            .expect("campus campaign runs");
        let total_ns = start.elapsed().as_nanos();
        if let Some(expected) = expected_scenarios {
            assert_eq!(report.scenarios, expected, "{phase} scenario count drifted");
        }

        // Isolation: the campaign pinned a snapshot and worked on
        // copies — the live shard never noticed.
        let stats = engine.stats();
        assert_eq!(stats.epoch, 0, "campaign must not bump the epoch");
        assert_eq!(stats.cache_len, 0, "campaign must not touch the cache");
        assert_eq!(stats.campaigns_run, 1);
        assert_eq!(stats.scenarios_evaluated, report.scenarios as u64);
        if mc {
            assert!(
                stats.mc_trials_total > 0,
                "{phase} sweep must price scenarios by Monte-Carlo"
            );
        }
        if crn {
            assert!(
                stats.campaign_crn_reuse > 0,
                "CRN sweep never reused a cached draw word at {devices} devices"
            );
        } else {
            assert_eq!(
                stats.campaign_crn_reuse, 0,
                "{phase} campaign must not touch the CRN draw table"
            );
        }

        cells.push(Cell {
            phase,
            devices,
            workers,
            scenarios: report.scenarios,
            perspectives: report.perspectives,
            total_ns,
            mc_trials: stats.mc_trials_total,
            crn_reuse: stats.campaign_crn_reuse,
        });
        reports.push(report.render_json());
        engine.shutdown();
    }
    for other in &reports[1..] {
        assert_eq!(
            &reports[0], other,
            "{phase} {devices}-device report drifted across worker counts"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_campaign.json")
        .to_string();

    let all_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let samples: usize = if smoke { 20_000 } else { 100_000 };
    let mut cells: Vec<Cell> = Vec::new();

    for params in sizes(smoke) {
        let devices = params.device_count();
        run_phase(
            "kill",
            params,
            &kill_spec(),
            all_cores,
            Some(devices),
            &mut cells,
        );
        // 5 device classes × 8 factors.
        run_phase(
            "crn",
            params,
            &sweep_spec(samples, true),
            all_cores,
            Some(40),
            &mut cells,
        );
        run_phase(
            "independent",
            params,
            &sweep_spec(samples, false),
            all_cores,
            Some(40),
            &mut cells,
        );
    }

    if !smoke {
        for (devices, workers, speedup) in crn_speedups(&cells) {
            if devices == 358 {
                assert!(
                    speedup >= 2.0,
                    "CRN sweep must clear 2x over independent-seeds at {devices} devices / \
                     {workers} worker(s), got {speedup:.2}x"
                );
            }
        }
        // Worker scaling: scenarios/sec must be monotone non-decreasing
        // in workers (5% noise floor) — but only across counts the host
        // can actually run in parallel; oversubscribed columns are
        // recorded (with `host_cpus` for context) and exempted.
        for phase in ["kill", "crn", "independent"] {
            for params in sizes(smoke) {
                let devices = params.device_count();
                let sweep: Vec<&Cell> = cells
                    .iter()
                    .filter(|c| c.phase == phase && c.devices == devices && c.workers <= all_cores)
                    .collect();
                for pair in sweep.windows(2) {
                    assert!(
                        pair[1].scenarios_per_sec() >= 0.95 * pair[0].scenarios_per_sec(),
                        "{phase} throughput fell from {:.1}/s at {} worker(s) to {:.1}/s at {} \
                         worker(s) on {devices} devices (host_cpus={all_cores})",
                        pair[0].scenarios_per_sec(),
                        pair[0].workers,
                        pair[1].scenarios_per_sec(),
                        pair[1].workers,
                    );
                }
            }
        }
    }

    let json = render_json(smoke, samples, all_cores, &cells);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    println!("campaign bench → {out}");
    println!(
        "{:>12} {:>8} {:>8} {:>10} {:>13} {:>15} {:>12} {:>12}",
        "phase",
        "devices",
        "workers",
        "scenarios",
        "perspectives",
        "scenarios/sec",
        "mc_trials",
        "crn_reuse"
    );
    for cell in &cells {
        println!(
            "{:>12} {:>8} {:>8} {:>10} {:>13} {:>15.1} {:>12} {:>12}",
            cell.phase,
            cell.devices,
            cell.workers,
            cell.scenarios,
            cell.perspectives,
            cell.scenarios_per_sec(),
            cell.mc_trials,
            cell.crn_reuse
        );
    }
    for (devices, workers, speedup) in crn_speedups(&cells) {
        println!(
            "CRN speedup vs independent-seeds @ {devices} devices / {workers} worker(s): {speedup:.2}x"
        );
    }
    for (phase, devices, workers, scaling, efficiency) in parallel_efficiency(&cells) {
        println!(
            "{phase} scaling @ {devices} devices: {workers} workers = {scaling:.2}x \
             (efficiency {efficiency:.2}, host_cpus {all_cores})"
        );
    }
}

/// CRN vs independent-seeds scenarios/sec at equal worker counts.
fn crn_speedups(cells: &[Cell]) -> Vec<(usize, usize, f64)> {
    let find = |devices, phase, workers| {
        cells
            .iter()
            .find(|c| c.devices == devices && c.phase == phase && c.workers == workers)
            .expect("cell present")
            .scenarios_per_sec()
    };
    cells
        .iter()
        .filter(|c| c.phase == "crn")
        .map(|c| {
            (
                c.devices,
                c.workers,
                c.scenarios_per_sec() / find(c.devices, "independent", c.workers),
            )
        })
        .collect()
}

/// Hand-rolled JSON (numbers + fixed keys only; nothing needs escaping).
fn render_json(smoke: bool, samples: usize, host_cpus: usize, cells: &[Cell]) -> String {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"campaign\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"kill_spec\": \"{}\",\n", kill_spec()));
    json.push_str(&format!(
        "  \"crn_spec\": \"{}\",\n",
        sweep_spec(samples, true)
    ));
    json.push_str(&format!(
        "  \"independent_spec\": \"{}\",\n",
        sweep_spec(samples, false)
    ));
    json.push_str("  \"results\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"phase\": \"{}\", \"devices\": {}, \"workers\": {}, \"scenarios\": {}, \
             \"perspectives\": {}, \"total_ns\": {}, \"scenarios_per_sec\": {:.1}, \
             \"mc_trials\": {}, \"crn_reuse\": {}}}{}\n",
            cell.phase,
            cell.devices,
            cell.workers,
            cell.scenarios,
            cell.perspectives,
            cell.total_ns,
            cell.scenarios_per_sec(),
            cell.mc_trials,
            cell.crn_reuse,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"crn_speedup_vs_independent\": [");
    let ratios = crn_speedups(cells);
    for (i, (devices, workers, speedup)) in ratios.iter().enumerate() {
        json.push_str(&format!(
            "{{\"devices\": {devices}, \"workers\": {workers}, \"speedup\": {speedup:.3}}}{}",
            if i + 1 == ratios.len() { "" } else { ", " }
        ));
    }
    json.push_str("],\n");
    json.push_str("  \"parallel_efficiency\": [");
    let efficiencies = parallel_efficiency(cells);
    for (i, (phase, devices, workers, scaling, efficiency)) in efficiencies.iter().enumerate() {
        json.push_str(&format!(
            "{{\"phase\": \"{phase}\", \"devices\": {devices}, \"workers\": {workers}, \
             \"scaling\": {scaling:.3}, \"parallel_efficiency\": {efficiency:.3}}}{}",
            if i + 1 == efficiencies.len() {
                ""
            } else {
                ", "
            }
        ));
    }
    json.push_str("]\n}\n");
    json
}
