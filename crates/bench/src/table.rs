//! Minimal aligned-column ASCII tables for experiment reports.

use std::fmt;

/// A simple table: headers plus rows, rendered with aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str("| ");
                line.push_str(cell);
                line.push_str(&" ".repeat(w - cell.chars().count() + 1));
            }
            line.push('|');
            writeln!(f, "{line}")
        };
        write_row(f, &self.headers)?;
        let mut sep = String::new();
        for w in &widths {
            sep.push_str(&format!("|{}", "-".repeat(w + 2)));
        }
        sep.push('|');
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["AS", "RQ", "PR"]);
        t.row(["Request printing", "t1", "printS"]);
        t.row(["Login to printer", "p2", "printS"]);
        let s = t.to_string();
        assert!(s.contains("| Request printing | t1 |"), "{s}");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{s}");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only"]);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        let s = t.to_string();
        assert!(s.lines().count() == 3);
    }
}
