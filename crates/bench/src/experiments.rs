//! The experiment regenerators E1–E15 (DESIGN.md §3). Every function
//! returns a plain-text report; the `experiments` binary prints them.

use crate::table::Table;
use dependability::importance::component_importance;
use dependability::transform::{AnalysisOptions, ServiceAvailabilityModel};
use dependability::{paper_approximation, steady_state};
use netgen::campus::{campus_scenario, CampusParams};
use netgen::usi::{
    printing_service, second_perspective_mapping, table_i_mapping, usi_infrastructure,
    EXPECTED_FIG11_NODES, EXPECTED_FIG12_NODES, PRINTED_PATHS_T1_PRINTS,
};
use std::fmt::Write as _;
use std::time::Instant;
use upsim_core::discovery::{discover, DiscoveryOptions};
use upsim_core::mapping::ServiceMappingPair;
use upsim_core::pipeline::UpsimPipeline;

fn usi_pipeline() -> UpsimPipeline {
    UpsimPipeline::new(usi_infrastructure(), printing_service(), table_i_mapping())
        .expect("case-study models are consistent")
}

fn micros(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// E1 — Table I: mapping of atomic services to (requester, provider).
pub fn e1_table_i() -> String {
    let mapping = table_i_mapping();
    let mut t = Table::new(["AS", "RQ", "PR"]);
    for pair in mapping.pairs() {
        t.row([
            pair.atomic_service.as_str(),
            pair.requester.as_str(),
            pair.provider.as_str(),
        ]);
    }
    format!("E1 — Table I: service mapping pairs of the printing service\n\n{t}")
}

/// E2 — Figs. 5/9: the USI infrastructure census and graph metrics.
pub fn e2_infrastructure() -> String {
    let infra = usi_infrastructure();
    let (graph, _) = infra.to_graph();
    let metrics = ict_graph::metrics::metrics(&graph);
    let mut out = String::from("E2 — Figs. 5/9: USI campus infrastructure\n\n");
    let mut t = Table::new(["class", "instances"]);
    for (class, count) in infra.census() {
        t.row([class, count.to_string()]);
    }
    let _ = writeln!(out, "{t}");
    let _ = writeln!(
        out,
        "devices: {}   links: {}   components: {}   diameter: {}   mean degree: {:.2}",
        infra.device_count(),
        infra.link_count(),
        metrics.components,
        metrics.diameter.unwrap_or(0),
        metrics.mean_degree
    );
    let crit = ict_graph::connectivity::critical_elements(&graph);
    let artics: Vec<String> = crit
        .articulation_points
        .iter()
        .map(|&n| graph.node(n).expect("live").clone())
        .collect();
    let _ = writeln!(
        out,
        "articulation points (single points of failure): {}",
        artics.join(", ")
    );
    out
}

/// E3 — Figs. 6/7/8: profiles and per-class dependability attributes.
pub fn e3_profiles() -> String {
    let infra = usi_infrastructure();
    let mut out = String::from("E3 — Figs. 6/7/8: profiles and stereotyped classes\n\n");
    let availability = infra.availability_profile();
    let network = infra.network_profile();
    let _ = writeln!(
        out,
        "availability profile '{}': {} stereotypes; network profile '{}': {} stereotypes",
        availability.name,
        availability.stereotypes.len(),
        network.name,
        network.stereotypes.len()
    );
    let mut t = Table::new(["class", "stereotypes", "MTBF [h]", "MTTR [h]", "red."]);
    for class in &infra.classes.classes {
        t.row([
            class.name.clone(),
            class.stereotype_names().join(";"),
            class
                .value("MTBF")
                .and_then(|v| v.as_real())
                .map(|v| format!("{v}"))
                .unwrap_or_default(),
            class
                .value("MTTR")
                .and_then(|v| v.as_real())
                .map(|v| format!("{v}"))
                .unwrap_or_default(),
            class
                .value("redundantComponents")
                .and_then(|v| v.as_integer())
                .map(|v| v.to_string())
                .unwrap_or_default(),
        ]);
    }
    let _ = writeln!(out, "{t}");
    out
}

/// E4 — Fig. 10: the printing service activity diagram.
pub fn e4_service() -> String {
    let svc = printing_service();
    let order = svc.execution_order().expect("well-formed");
    let mut out = String::from("E4 — Fig. 10: printing service description\n\n");
    let _ = writeln!(
        out,
        "composite service '{}', {} atomic services:",
        svc.name(),
        order.len()
    );
    for (i, a) in order.iter().enumerate() {
        let _ = writeln!(out, "  {}. {}", i + 1, a);
    }
    let _ = writeln!(out, "\nactivity XMI:\n{}", svc.to_xml());
    out
}

/// E5 — Sec. VI-G: path discovery for the pair (t1, printS).
pub fn e5_paths() -> String {
    let infra = usi_infrastructure();
    let d = discover(
        &infra,
        &ServiceMappingPair::new("Request printing", "t1", "printS"),
        DiscoveryOptions::default(),
    )
    .expect("pair resolves");
    let mut out = String::from("E5 — Sec. VI-G: paths for service mapping pair (t1, printS)\n\n");
    for i in 0..d.len() {
        let printed = PRINTED_PATHS_T1_PRINTS
            .iter()
            .any(|p| p.iter().copied().eq(d.path_names(i)));
        let marker = if printed {
            "  [printed in the paper]"
        } else {
            ""
        };
        let _ = writeln!(out, "  {}{}", d.render_path_at(i), marker);
    }
    let _ = writeln!(
        out,
        "\ntotal paths: {} (the paper prints the first two and elides the rest)",
        d.len()
    );
    out
}

fn upsim_report(title: &str, run: &upsim_core::pipeline::UpsimRun, expected: &[&str]) -> String {
    let mut out = format!("{title}\n\n");
    let mut names: Vec<&str> = run
        .upsim
        .instances
        .iter()
        .map(|i| i.name.as_str())
        .collect();
    names.sort_unstable();
    let mut expect: Vec<&str> = expected.to_vec();
    expect.sort_unstable();
    let _ = writeln!(
        out,
        "UPSIM instances ({}): {}",
        names.len(),
        names.join(", ")
    );
    let _ = writeln!(out, "expected (paper figure): {}", expect.join(", "));
    let _ = writeln!(
        out,
        "match: {}",
        if names == expect { "EXACT" } else { "MISMATCH" }
    );
    let _ = writeln!(out, "UPSIM links: {}", run.upsim.links.len());
    let _ = writeln!(
        out,
        "size reduction |UPSIM|/|N|: {:.3}",
        run.reduction_ratio
    );
    out
}

/// E6 — Fig. 11: UPSIM for the perspective T1 → P2 via printS.
pub fn e6_fig11() -> String {
    let mut pipeline = usi_pipeline();
    let run = pipeline.run().expect("case study runs");
    upsim_report(
        "E6 — Fig. 11: UPSIM for printing, client T1, printer P2, server printS",
        &run,
        &EXPECTED_FIG11_NODES,
    )
}

/// E7 — Fig. 12: UPSIM for T15 → P3, obtained by a mapping-only change.
pub fn e7_fig12() -> String {
    let mut pipeline = usi_pipeline();
    pipeline.run().expect("first run");
    pipeline
        .update_mapping(|m| *m = second_perspective_mapping())
        .expect("second perspective valid");
    let run = pipeline.run().expect("second run");
    let mut out = upsim_report(
        "E7 — Fig. 12: UPSIM for printing, client T15, printer P3, server printS",
        &run,
        &EXPECTED_FIG12_NODES,
    );
    let cached: Vec<&str> = run
        .timings
        .iter()
        .filter(|t| t.cached)
        .map(|t| t.step)
        .collect();
    let _ = writeln!(
        out,
        "steps served from cache after the mapping-only change: {}",
        cached.join(", ")
    );
    out
}

/// E8 — Formula 1 + Sec. VII: user-perceived steady-state availability.
pub fn e8_availability() -> String {
    let mut out =
        String::from("E8 — Formula 1 / Sec. VII: user-perceived service availability\n\n");

    // Per-class availability (exact vs the paper's printed approximation).
    let mut t = Table::new([
        "class",
        "MTBF [h]",
        "MTTR [h]",
        "A exact",
        "A paper (1-MTTR/MTBF)",
        "delta",
    ]);
    for (class, mtbf, mttr) in [
        ("Server", 60_000.0, 0.1),
        ("C6500", 183_498.0, 0.5),
        ("C2960", 61_320.0, 0.5),
        ("HP2650", 199_000.0, 0.5),
        ("C3750", 188_575.0, 0.5),
        ("Comp", 3_000.0, 24.0),
        ("Printer", 2_880.0, 1.0),
    ] {
        let exact = steady_state(mtbf, mttr);
        let paper = paper_approximation(mtbf, mttr);
        t.row([
            class.to_string(),
            format!("{mtbf}"),
            format!("{mttr}"),
            format!("{exact:.9}"),
            format!("{paper:.9}"),
            format!("{:.2e}", exact - paper),
        ]);
    }
    let _ = writeln!(out, "{t}");

    // Service availability for both perspectives, via every engine.
    let mut t = Table::new([
        "perspective",
        "A exact (BDD)",
        "A pairwise product",
        "A Monte-Carlo (95% CI)",
        "covers exact",
    ]);
    // Both perspectives (and the SDP comparison below) discover over one
    // shared interned graph view — the infrastructure is the same, only
    // the mapping changes.
    let shared_graph = std::sync::Arc::new(usi_infrastructure().to_interned_graph());
    for (label, second) in [
        ("T1 -> P2 via printS", false),
        ("T15 -> P3 via printS", true),
    ] {
        let mut pipeline = usi_pipeline();
        pipeline.set_shared_graph(std::sync::Arc::clone(&shared_graph));
        if second {
            pipeline
                .update_mapping(|m| *m = second_perspective_mapping())
                .expect("valid");
        }
        let run = pipeline.run().expect("runs");
        let model = ServiceAvailabilityModel::from_run(
            pipeline.infrastructure(),
            &run,
            AnalysisOptions::default(),
        );
        let exact = model.availability_bdd();
        let naive = model.availability_pairwise_product();
        // The compiled bit-sliced kernel; `workers = 0` (all cores) is
        // safe for reproducibility — counter-based draws make the
        // estimate worker-count-invariant.
        let mc = model.monte_carlo_bitsliced(200_000, 0, 2013);
        let (lo, hi) = mc.confidence_95();
        t.row([
            label.to_string(),
            format!("{exact:.9}"),
            format!("{naive:.9}"),
            format!("{:.6} [{:.6}, {:.6}]", mc.estimate, lo, hi),
            mc.covers(exact).to_string(),
        ]);
    }
    let _ = writeln!(out, "{t}");

    // SDP/BDD agreement per pair + importance ranking (perspective 1).
    let mut pipeline = usi_pipeline();
    pipeline.set_shared_graph(shared_graph);
    let run = pipeline.run().expect("runs");
    let model = ServiceAvailabilityModel::from_run(
        pipeline.infrastructure(),
        &run,
        AnalysisOptions::default(),
    );
    let mut t = Table::new([
        "atomic service",
        "pair",
        "paths",
        "A pair (BDD)",
        "A pair (SDP)",
        "|diff|",
    ]);
    for (i, system) in model.systems.iter().enumerate() {
        let bdd = model.pair_availability_bdd(i);
        let sdp = model.pair_availability_sdp(i);
        t.row([
            system.atomic_service.clone(),
            format!("{} -> {}", system.requester, system.provider),
            system.path_sets.len().to_string(),
            format!("{bdd:.9}"),
            format!("{sdp:.9}"),
            format!("{:.2e}", (bdd - sdp).abs()),
        ]);
    }
    let _ = writeln!(out, "{t}");

    let mut t = Table::new([
        "component",
        "A",
        "Birnbaum",
        "criticality",
        "Fussell-Vesely",
    ]);
    for imp in component_importance(&model) {
        t.row([
            imp.name,
            format!("{:.6}", imp.availability),
            format!("{:.3e}", imp.birnbaum),
            format!("{:.4}", imp.criticality),
            format!("{:.4}", imp.fussell_vesely),
        ]);
    }
    let _ = writeln!(out, "component importance (perspective T1 -> P2):\n{t}");
    out
}

/// E9 — Sec. V-D complexity claim: `O(n!)` on complete graphs vs benign
/// growth on tree-like campus networks.
pub fn e9_scaling() -> String {
    let mut out = String::from("E9 — Sec. V-D: path-discovery complexity\n\n");
    let mut t = Table::new(["K_n", "nodes", "links", "paths", "time [us]"]);
    for n in 4..=9usize {
        let infra = netgen::random::complete(n);
        let pair = ServiceMappingPair::new("s", "n0", format!("n{}", n - 1));
        let start = Instant::now();
        let d = discover(&infra, &pair, DiscoveryOptions::default()).expect("resolves");
        let elapsed = start.elapsed();
        t.row([
            format!("K_{n}"),
            infra.device_count().to_string(),
            infra.link_count().to_string(),
            d.len().to_string(),
            micros(elapsed),
        ]);
    }
    let _ = writeln!(out, "complete graphs (worst case — factorial growth):\n{t}");

    let mut t = Table::new(["campus", "devices", "links", "paths", "time [us]"]);
    for distributions in [2usize, 4, 8, 16, 32] {
        let params = CampusParams {
            core: 2,
            distributions,
            edges_per_distribution: 2,
            clients_per_edge: 4,
            servers: 3,
            dual_homed_edges: false,
        };
        let (infra, _, _) = campus_scenario(params);
        let pair = ServiceMappingPair::new("s", "t0_0_0", "srv0");
        let start = Instant::now();
        let d = discover(&infra, &pair, DiscoveryOptions::default()).expect("resolves");
        let elapsed = start.elapsed();
        t.row([
            format!("dist={distributions}"),
            infra.device_count().to_string(),
            infra.link_count().to_string(),
            d.len().to_string(),
            micros(elapsed),
        ]);
    }
    let _ = writeln!(
        out,
        "campus networks (tree-like periphery, redundant core — the realistic case):\n{t}"
    );
    let _ = writeln!(
        out,
        "shape check: K_n paths grow factorially with n; campus paths grow only linearly (each dual-homed distribution switch adds one redundant core transit) and discovery time stays in the microsecond-to-millisecond range."
    );
    out
}

/// E10 — Sec. V-A3: which change re-runs which step.
pub fn e10_dynamicity() -> String {
    let mut out = String::from("E10 — Sec. V-A3: dynamicity — cost of model changes\n\n");
    let mut t = Table::new([
        "change",
        "step 5 (models)",
        "step 6 (mapping)",
        "step 7 [us]",
        "step 8 [us]",
        "UPSIM",
    ]);

    let mut record = |label: &str, run: &upsim_core::pipeline::UpsimRun| {
        let find = |step: &str| {
            run.timings
                .iter()
                .find(|x| x.step.starts_with(step))
                .expect("step present")
        };
        let fmt_cached = |s: &upsim_core::pipeline::StepTiming| {
            if s.cached {
                "cached".to_string()
            } else {
                format!("{} us", micros(s.duration))
            }
        };
        t.row([
            label.to_string(),
            fmt_cached(find("5")),
            fmt_cached(find("6")),
            micros(find("7").duration),
            micros(find("8").duration),
            format!("{} nodes", run.upsim.instances.len()),
        ]);
    };

    let mut pipeline = usi_pipeline();
    let run = pipeline.run().expect("runs");
    record("initial run", &run);

    // User perspective change: mapping only.
    pipeline
        .update_mapping(|m| *m = second_perspective_mapping())
        .expect("valid");
    let run = pipeline.run().expect("runs");
    record("perspective change (mapping only)", &run);

    // Service migration: provider moves to another server — mapping only.
    pipeline
        .update_mapping(|m| {
            m.migrate_provider("printS", "file1");
            m.move_requester("printS", "file1");
        })
        .expect("valid");
    let run = pipeline.run().expect("runs");
    record("provider migration (mapping only)", &run);

    // Topology change: a new redundant link — network model + mapping.
    pipeline
        .update_infrastructure(|infra| {
            infra.connect("d3", "c2")?;
            Ok(())
        })
        .expect("valid");
    let run = pipeline.run().expect("runs");
    record("topology change (network model)", &run);

    // Service substitution: new composition, same network.
    pipeline
        .substitute_service(netgen::usi::backup_service(), netgen::usi::backup_mapping())
        .expect("valid");
    let run = pipeline.run().expect("runs");
    record("service substitution (service + mapping)", &run);

    let _ = writeln!(out, "{t}");
    let _ = writeln!(
        out,
        "shape check: mapping-only changes keep step 5 cached; topology/service changes re-import; the network model never changes for mapping edits."
    );
    out
}

/// E11 — Sec. VIII scalability + IPPS angle: UPSIM generation cost and
/// parallel path-discovery speedup.
pub fn e11_parallel() -> String {
    let mut out = String::from("E11 — Sec. VIII: scalability and parallel discovery\n\n");

    // Pipeline wall time vs campus size.
    let mut t = Table::new([
        "campus devices",
        "full run [ms]",
        "UPSIM nodes",
        "reduction",
    ]);
    for distributions in [2usize, 8, 32, 64] {
        let params = CampusParams {
            core: 2,
            distributions,
            edges_per_distribution: 2,
            clients_per_edge: 8,
            servers: 3,
            dual_homed_edges: false,
        };
        let (infra, svc, mapping) = campus_scenario(params);
        let devices = infra.device_count();
        let mut pipeline = UpsimPipeline::new(infra, svc, mapping).expect("valid");
        pipeline.record_paths = false;
        let start = Instant::now();
        let run = pipeline.run().expect("runs");
        let elapsed = start.elapsed();
        t.row([
            devices.to_string(),
            format!("{:.2}", elapsed.as_secs_f64() * 1e3),
            run.upsim.instances.len().to_string(),
            format!("{:.4}", run.reduction_ratio),
        ]);
    }
    let _ = writeln!(out, "end-to-end pipeline vs network size:\n{t}");

    // Parallel speedup on the path-explosion worst case — measured at the
    // graph level (ict-graph), where the enumeration itself dominates.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let infra = netgen::random::complete(10);
    let (graph, index) = infra.to_graph();
    let (s, t_node) = (index["n0"], index["n9"]);
    let start = Instant::now();
    let seq = ict_graph::paths::all_simple_paths(&graph, s, t_node);
    let seq_time = start.elapsed();
    let mut t = Table::new(["threads", "time [ms]", "speedup", "paths"]);
    t.row([
        "seq".to_string(),
        format!("{:.2}", seq_time.as_secs_f64() * 1e3),
        "1.00".into(),
        seq.len().to_string(),
    ]);
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let par = ict_graph::parallel::parallel_simple_paths(
            &graph,
            s,
            t_node,
            ict_graph::parallel::ParallelOptions {
                threads,
                ..Default::default()
            },
        );
        let elapsed = start.elapsed();
        assert_eq!(par.len(), seq.len(), "parallel enumeration must agree");
        t.row([
            threads.to_string(),
            format!("{:.2}", elapsed.as_secs_f64() * 1e3),
            format!("{:.2}", seq_time.as_secs_f64() / elapsed.as_secs_f64()),
            par.len().to_string(),
        ]);
    }
    let _ = writeln!(
        out,
        "parallel all-paths enumeration on K_10 ({} paths), host cores: {cores}:\n{t}",
        seq.len()
    );
    let _ = writeln!(
        out,
        "shape check: with {cores} core(s) available, the expected speedup ceiling is {cores}.00x; \
         on a single-core host the experiment instead bounds the parallelization overhead \
         (prefix split + per-worker sort + k-way merge). Equivalence of the parallel and \
         sequential path sets is asserted above and proptested in ict-graph."
    );
    out
}

/// E12 — Sec. VII outlook extensions: cut sets, fault trees, RBDs and the
/// performance (throughput) view of the UPSIM.
pub fn e12_outlook() -> String {
    let mut out =
        String::from("E12 — Sec. VII outlook: cut sets, fault tree, RBD and performance view\n\n");
    let mut pipeline = usi_pipeline();
    let run = pipeline.run().expect("runs");
    let model = ServiceAvailabilityModel::from_run(
        pipeline.infrastructure(),
        &run,
        AnalysisOptions::default(),
    );

    // Minimal cut sets of the first pair (t1 -> printS).
    let name_of = |v: usize| model.components[v].name.clone();
    let cuts = model.pair_cut_sets(0);
    let _ = writeln!(out, "minimal cut sets of pair (t1, printS):");
    for cut in &cuts {
        let names: Vec<String> = cut.iter().map(|&v| name_of(v)).collect();
        let _ = writeln!(out, "  {{{}}}", names.join(", "));
    }
    let ft = model.pair_fault_tree(0);
    let u = ft.top_event_probability(&model.availability_vector());
    let a = model.pair_availability_bdd(0);
    let _ = writeln!(
        out,
        "fault-tree top event probability: {u:.9}  (1 - A_pair = {:.9}, |diff| = {:.2e})",
        1.0 - a,
        (u - (1.0 - a)).abs()
    );

    // RBD notation where structurally valid (single-path sub-systems).
    let _ = writeln!(
        out,
        "\nRBD views (parallel-of-series over minimal path sets):"
    );
    for (i, system) in model.systems.iter().enumerate() {
        match model.pair_rbd(i) {
            Some(rbd) => {
                let _ = writeln!(
                    out,
                    "  {}: {}",
                    system.atomic_service,
                    rbd.render(&|v| name_of(v))
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {}: components shared between paths — no single-use RBD, exact engines used",
                    system.atomic_service
                );
            }
        }
    }

    // Performance (throughput) analysis from the Communication profile.
    let report = dependability::performance::analyze(pipeline.infrastructure(), &run);
    let mut t = Table::new([
        "atomic service",
        "widest route [Mbit/s]",
        "max flow [Mbit/s]",
        "min hops",
    ]);
    for p in &report.pairs {
        t.row([
            p.atomic_service.clone(),
            format!("{:.0}", p.widest_throughput),
            format!("{:.0}", p.max_flow_throughput),
            p.min_hops.to_string(),
        ]);
    }
    let _ = writeln!(
        out,
        "\nuser-perceived performance (Fig. 7 Communication.throughput):\n{t}"
    );
    let _ = writeln!(
        out,
        "session throughput (sequential service, min over pairs): {:.0} Mbit/s; total hops: {}",
        report.session_throughput, report.total_hops
    );
    out
}

/// E13 — beyond steady state (related-work critique of \[2\]/\[8\]: "the
/// methodology can only be used to assess steady-state availability"):
/// transient service availability and mission reliability curves.
pub fn e13_transient() -> String {
    let mut out = String::from(
        "E13 — transient analysis: instantaneous availability & mission reliability\n\n",
    );
    let mut pipeline = usi_pipeline();
    let run = pipeline.run().expect("runs");
    let model = ServiceAvailabilityModel::from_run(
        pipeline.infrastructure(),
        &run,
        AnalysisOptions::default(),
    );
    let transient = dependability::transient::TransientAnalysis::new(&model);
    let steady = transient.steady_state();

    let mut t = Table::new(["t [h]", "A_service(t)", "R_service(t)"]);
    for time in [0.0, 1.0, 8.0, 24.0, 168.0, 720.0, 8760.0] {
        t.row([
            format!("{time}"),
            format!("{:.9}", transient.availability_at(time)),
            format!("{:.9}", transient.reliability_at(time)),
        ]);
    }
    let _ = writeln!(out, "{t}");
    let _ = writeln!(
        out,
        "steady-state limit: {steady:.9} (= the exact BDD value of E8)"
    );
    let _ = writeln!(
        out,
        "shape check: A(0)=1, A(t) decays monotonically to the steady state within ~2 weeks \
         (dominated by the client's (λ+µ) ≈ 1/24 h⁻¹); R(t) ≤ A(t) everywhere and keeps \
         falling (missions get no repair credit)."
    );
    out
}

/// E14 — redundancy quantification: internally node-disjoint routes per
/// mapping pair (Menger), cross-checked against the minimal cut sets of
/// E12 (the smallest cut has exactly that cardinality).
pub fn e14_redundancy() -> String {
    let mut out = String::from("E14 — redundancy: node-disjoint routes per mapping pair\n\n");
    let infra = usi_infrastructure();
    let (graph, index) = infra.to_graph();
    let mut pipeline = usi_pipeline();
    let run = pipeline.run().expect("runs");
    let model = ServiceAvailabilityModel::from_run(
        pipeline.infrastructure(),
        &run,
        AnalysisOptions::default(),
    );

    let mut t = Table::new([
        "atomic service",
        "pair",
        "simple paths",
        "disjoint routes",
        "smallest cut",
    ]);
    for (i, d) in run.discovered.iter().enumerate() {
        let disjoint = ict_graph::disjoint::max_disjoint_paths(
            &graph,
            index[&d.pair.requester],
            index[&d.pair.provider],
        );
        let smallest_cut = model
            .pair_cut_sets(i)
            .iter()
            .map(Vec::len)
            .min()
            .unwrap_or(0);
        t.row([
            d.pair.atomic_service.clone(),
            format!("{} -> {}", d.pair.requester, d.pair.provider),
            d.len().to_string(),
            disjoint.to_string(),
            smallest_cut.to_string(),
        ]);
    }
    let _ = writeln!(out, "{t}");
    let _ = writeln!(
        out,
        "shape check: every USI pair has exactly 1 disjoint route — the tree-shaped access \
         periphery dominates; the 6 simple paths per pair are core-diversity only. The smallest \
         cut is the singleton {{access switch}}, matching Menger. Compare a k=4 fat tree:"
    );
    let ft = netgen::random::fat_tree(4);
    let (g2, idx2) = ft.to_graph();
    let d = ict_graph::disjoint::max_disjoint_paths(&g2, idx2["edge0_0"], idx2["edge1_0"]);
    let _ = writeln!(
        out,
        "  fat-tree(4): {} devices, edge-to-edge disjoint routes across pods = {d} \
         (aggregation-layer diversity survives any single switch failure).",
        ft.device_count()
    );
    out
}

/// E15 — the founding premise, swept: user-perceived availability over
/// *all 45* (client, printer) perspectives of the printing service.
/// Paper Sec. I: "every pair may utilize different ICT components. To
/// assess service dependability for any client within the network,
/// information about the overall network dependability often is not
/// sufficient." Sec. VIII: a system-view "is thus only of statistical
/// relevance".
pub fn e15_perspective_sweep() -> String {
    let mut out = String::from(
        "E15 — perspective sweep: availability over all 45 (client, printer) pairs\n\n",
    );
    let mut pipeline = usi_pipeline();
    let mut results: Vec<(String, String, f64, usize)> = Vec::new();
    for (client, printer, mapping) in netgen::usi::all_printing_perspectives() {
        pipeline
            .update_mapping(|m| *m = mapping.clone())
            .expect("valid perspective");
        let run = pipeline.run().expect("runs");
        let model = ServiceAvailabilityModel::from_run(
            pipeline.infrastructure(),
            &run,
            AnalysisOptions::default(),
        );
        results.push((
            client,
            printer,
            model.availability_bdd(),
            run.upsim.instances.len(),
        ));
    }

    let min = results
        .iter()
        .cloned()
        .reduce(|a, b| if b.2 < a.2 { b } else { a })
        .expect("45 rows");
    let max = results
        .iter()
        .cloned()
        .reduce(|a, b| if b.2 > a.2 { b } else { a })
        .expect("45 rows");
    let mean = results.iter().map(|r| r.2).sum::<f64>() / results.len() as f64;

    let mut t = Table::new(["perspective", "A", "downtime [h/yr]", "UPSIM size"]);
    let mut show = |label: &str, row: &(String, String, f64, usize)| {
        t.row([
            format!("{label} {}→{}", row.0, row.1),
            format!("{:.9}", row.2),
            format!("{:.1}", (1.0 - row.2) * 8760.0),
            row.3.to_string(),
        ]);
    };
    show("worst", &min);
    show("best", &max);
    let _ = writeln!(out, "{t}");
    let _ = writeln!(
        out,
        "perspectives: {}   mean A: {mean:.9}   spread (best-worst): {:.2e}",
        results.len(),
        max.2 - min.2
    );
    let _ = writeln!(
        out,
        "shape check: all 45 perspectives share the dominant client+printer availability, \
         so the spread is small in absolute terms — but it is strictly positive and \
         systematic (co-located client/printer subtrees share their access switch, \
         perspectives crossing more of the tree perceive less availability). A single \
         system-wide number could not express any of this; 45 UPSIMs, generated from one \
         network model + one service model + 45 tiny mapping files, do."
    );
    out
}

/// One experiment: its table/figure id and its regenerator.
pub type Experiment = (&'static str, fn() -> String);

/// Runs every experiment in order.
pub fn all() -> Vec<Experiment> {
    vec![
        ("E1", e1_table_i),
        ("E2", e2_infrastructure),
        ("E3", e3_profiles),
        ("E4", e4_service),
        ("E5", e5_paths),
        ("E6", e6_fig11),
        ("E7", e7_fig12),
        ("E8", e8_availability),
        ("E9", e9_scaling),
        ("E10", e10_dynamicity),
        ("E11", e11_parallel),
        ("E12", e12_outlook),
        ("E13", e13_transient),
        ("E14", e14_redundancy),
        ("E15", e15_perspective_sweep),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_contains_all_five_pairs() {
        let report = e1_table_i();
        for pair in [
            "Request printing",
            "Login to printer",
            "Send document list",
            "Select documents",
            "Send documents",
        ] {
            assert!(report.contains(pair), "{report}");
        }
    }

    #[test]
    fn e6_and_e7_report_exact_match() {
        assert!(e6_fig11().contains("match: EXACT"));
        assert!(e7_fig12().contains("match: EXACT"));
    }

    #[test]
    fn e5_marks_the_printed_paths() {
        let report = e5_paths();
        assert_eq!(
            report.matches("[printed in the paper]").count(),
            2,
            "{report}"
        );
        assert!(report.contains("total paths: 6"));
    }

    #[test]
    fn e8_reports_engine_agreement() {
        let report = e8_availability();
        assert!(report.contains("covers exact"), "{report}");
        // BDD/SDP agreement column present for all five pairs.
        assert!(
            report.matches("e-1").count()
                + report.matches("e+0").count()
                + report.matches("e-").count()
                > 0
        );
    }

    #[test]
    fn e10_shows_cached_steps() {
        let report = e10_dynamicity();
        assert!(report.contains("cached"), "{report}");
    }

    #[test]
    fn e12_fault_tree_agrees_with_availability() {
        let report = e12_outlook();
        assert!(
            report.contains("{c1, c2}"),
            "redundant core pair cut: {report}"
        );
        assert!(report.contains("|diff| = "), "{report}");
    }

    #[test]
    fn e13_curve_is_anchored() {
        let report = e13_transient();
        assert!(report.contains("1.000000000"), "A(0)=1: {report}");
        assert!(report.contains("0.991699164"), "steady state: {report}");
    }

    #[test]
    fn e14_menger_matches_cut_sets() {
        let report = e14_redundancy();
        // Every row ends with equal disjoint/cut columns of 1.
        assert_eq!(
            report.matches("| 1               | 1            |").count(),
            5,
            "{report}"
        );
    }
}
