//! Escaping and entity resolution for character data and attribute values.

use std::borrow::Cow;

/// Escapes a string for use as element character data.
///
/// `<`, `>` and `&` are replaced by their predefined entities. Quotes are
/// left alone — they are only significant inside attribute values.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, false)
}

/// Escapes a string for use inside a double-quoted attribute value.
///
/// In addition to the text escapes, `"` becomes `&quot;` and the whitespace
/// control characters become numeric references so attribute-value
/// normalization cannot corrupt round-trips.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, true)
}

fn escape_with(s: &str, attr: bool) -> Cow<'_, str> {
    let needs_escape =
        |c: char| matches!(c, '<' | '>' | '&') || (attr && matches!(c, '"' | '\n' | '\r' | '\t'));
    if !s.chars().any(needs_escape) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attr => out.push_str("&quot;"),
            '\n' if attr => out.push_str("&#10;"),
            '\r' if attr => out.push_str("&#13;"),
            '\t' if attr => out.push_str("&#9;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Resolves a single entity name (the text between `&` and `;`).
///
/// Supports the five predefined entities plus decimal (`#NN`) and
/// hexadecimal (`#xNN`) character references. Returns `None` when the
/// reference is not resolvable, in which case the parser reports an
/// [`crate::error::ErrorKind::InvalidEntity`].
pub fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let rest = name.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_roundtrip_critical_chars() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
        assert_eq!(escape_text("plain"), "plain");
        assert!(matches!(escape_text("plain"), Cow::Borrowed(_)));
    }

    #[test]
    fn attr_escaping_handles_quotes_and_whitespace() {
        assert_eq!(escape_attr("a\"b"), "a&quot;b");
        assert_eq!(escape_attr("a\nb\tc"), "a&#10;b&#9;c");
    }

    #[test]
    fn predefined_entities_resolve() {
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("quot"), Some('"'));
        assert_eq!(resolve_entity("apos"), Some('\''));
    }

    #[test]
    fn numeric_entities_resolve() {
        assert_eq!(resolve_entity("#65"), Some('A'));
        assert_eq!(resolve_entity("#x41"), Some('A'));
        assert_eq!(resolve_entity("#x1F600"), Some('\u{1F600}'));
    }

    #[test]
    fn bad_entities_are_rejected() {
        assert_eq!(resolve_entity("nbsp"), None);
        assert_eq!(resolve_entity("#xD800"), None); // surrogate
        assert_eq!(resolve_entity("#"), None);
        assert_eq!(resolve_entity(""), None);
    }
}
