//! Pull-based event parser over a UTF-8 XML string.
//!
//! The parser yields a flat stream of [`Event`]s. It enforces
//! well-formedness (tag balance, attribute uniqueness, single root) so that
//! downstream consumers such as [`crate::dom`] can build trees without
//! re-validating.

use crate::error::{Error, ErrorKind, Position, Result};
use crate::escape::resolve_entity;

/// A single parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v" ...>` — also emitted for self-closing tags, which are
    /// immediately followed by a matching [`Event::End`].
    Start {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<(String, String)>,
    },
    /// `</name>` (or the synthetic end of a self-closing tag).
    End {
        /// Element name.
        name: String,
    },
    /// Character data with entities resolved; CDATA sections are delivered
    /// verbatim as text. Whitespace-only text between elements is preserved.
    Text(String),
    /// `<!-- ... -->`.
    Comment(String),
    /// End of the document; always the final event.
    Eof,
}

/// Pull parser; call [`Parser::next_event`] until [`Event::Eof`].
pub struct Parser<'a> {
    chars: std::str::Chars<'a>,
    /// One-character lookahead.
    peeked: Option<char>,
    position: Position,
    /// Stack of currently open element names.
    open: Vec<String>,
    /// Whether the (single) root element has been closed already.
    root_closed: bool,
    /// Whether any root element has been seen.
    seen_root: bool,
    /// Pending synthetic end event for a self-closing tag.
    pending_end: Option<String>,
    finished: bool,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        Parser {
            chars: input.chars(),
            peeked: None,
            position: Position::START,
            open: Vec::new(),
            root_closed: false,
            seen_root: false,
            pending_end: None,
            finished: false,
        }
    }

    /// The current source position (start of the next unread character).
    pub fn position(&self) -> Position {
        self.position
    }

    fn err(&self, kind: ErrorKind) -> Error {
        Error::new(self.position, kind)
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peeked.take().or_else(|| self.chars.next());
        if let Some(c) = c {
            if c == '\n' {
                self.position.line += 1;
                self.position.column = 1;
            } else {
                self.position.column += 1;
            }
        }
        c
    }

    fn expect(&mut self, want: char, ctx: &'static str) -> Result<()> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(self.err(ErrorKind::UnexpectedChar {
                found: c,
                expected: ctx,
            })),
            None => Err(self.err(ErrorKind::UnexpectedEof(ctx))),
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn is_name_start(c: char) -> bool {
        c.is_alphabetic() || c == '_' || c == ':'
    }

    fn is_name_char(c: char) -> bool {
        Self::is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
    }

    fn read_name(&mut self, ctx: &'static str) -> Result<String> {
        let mut name = String::new();
        match self.peek() {
            Some(c) if Self::is_name_start(c) => {
                name.push(c);
                self.bump();
            }
            Some(c) => {
                return Err(self.err(ErrorKind::UnexpectedChar {
                    found: c,
                    expected: ctx,
                }))
            }
            None => return Err(self.err(ErrorKind::UnexpectedEof(ctx))),
        }
        while matches!(self.peek(), Some(c) if Self::is_name_char(c)) {
            name.push(self.bump().unwrap());
        }
        Ok(name)
    }

    fn read_entity(&mut self) -> Result<char> {
        // '&' already consumed.
        let mut name = String::new();
        loop {
            match self.bump() {
                Some(';') => break,
                Some(c) if name.len() < 12 => name.push(c),
                Some(_) => return Err(self.err(ErrorKind::InvalidEntity(name))),
                None => return Err(self.err(ErrorKind::UnexpectedEof("entity reference"))),
            }
        }
        resolve_entity(&name).ok_or_else(|| self.err(ErrorKind::InvalidEntity(name)))
    }

    fn read_attr_value(&mut self) -> Result<String> {
        let quote = match self.bump() {
            Some(c @ ('"' | '\'')) => c,
            Some(c) => {
                return Err(self.err(ErrorKind::UnexpectedChar {
                    found: c,
                    expected: "attribute value quote",
                }))
            }
            None => return Err(self.err(ErrorKind::UnexpectedEof("attribute value"))),
        };
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => break,
                Some('&') => value.push(self.read_entity()?),
                Some('<') => {
                    return Err(self.err(ErrorKind::UnexpectedChar {
                        found: '<',
                        expected: "attribute value content",
                    }))
                }
                Some(c) => value.push(c),
                None => return Err(self.err(ErrorKind::UnexpectedEof("attribute value"))),
            }
        }
        Ok(value)
    }

    /// Parses the inside of a `<...>` start tag (after `<` and name check).
    fn read_start_tag(&mut self) -> Result<Event> {
        let name = self.read_name("element name")?;
        let mut attributes: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    break;
                }
                Some('/') => {
                    self.bump();
                    self.expect('>', "'>' after '/' in self-closing tag")?;
                    self.pending_end = Some(name.clone());
                    break;
                }
                Some(c) if Self::is_name_start(c) => {
                    let attr_name = self.read_name("attribute name")?;
                    if attributes.iter().any(|(n, _)| *n == attr_name) {
                        return Err(self.err(ErrorKind::DuplicateAttribute(attr_name)));
                    }
                    self.skip_whitespace();
                    self.expect('=', "'=' after attribute name")?;
                    self.skip_whitespace();
                    let value = self.read_attr_value()?;
                    attributes.push((attr_name, value));
                }
                Some(c) => {
                    return Err(self.err(ErrorKind::UnexpectedChar {
                        found: c,
                        expected: "attribute, '/>' or '>'",
                    }))
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof("start tag"))),
            }
        }
        if self.open.is_empty() {
            if self.seen_root {
                return Err(self.err(ErrorKind::MultipleRoots));
            }
            self.seen_root = true;
        }
        self.open.push(name.clone());
        Ok(Event::Start { name, attributes })
    }

    fn read_end_tag(&mut self) -> Result<Event> {
        // "</" already consumed.
        let name = self.read_name("closing tag name")?;
        self.skip_whitespace();
        self.expect('>', "'>' in closing tag")?;
        match self.open.pop() {
            Some(open) if open == name => {
                if self.open.is_empty() {
                    self.root_closed = true;
                }
                Ok(Event::End { name })
            }
            Some(open) => Err(self.err(ErrorKind::MismatchedTag { open, close: name })),
            None => Err(self.err(ErrorKind::UnmatchedClose(name))),
        }
    }

    fn read_comment(&mut self) -> Result<Event> {
        // "<!--" already consumed.
        let mut text = String::new();
        loop {
            match self.bump() {
                Some('-') if self.peek() == Some('-') => {
                    self.bump();
                    self.expect('>', "'>' at end of comment")?;
                    return Ok(Event::Comment(text));
                }
                Some(c) => text.push(c),
                None => return Err(self.err(ErrorKind::UnexpectedEof("comment"))),
            }
        }
    }

    fn read_cdata(&mut self) -> Result<String> {
        // "<![CDATA[" already consumed.
        let mut text = String::new();
        loop {
            match self.bump() {
                Some(']') => {
                    // Collapse a run of ']' so that the *last two* before a
                    // '>' always form the terminator, e.g. "]]]>": one ']'
                    // belongs to the content.
                    let mut run = 1usize;
                    while self.peek() == Some(']') {
                        self.bump();
                        run += 1;
                    }
                    if run >= 2 && self.peek() == Some('>') {
                        self.bump();
                        text.extend(std::iter::repeat_n(']', run - 2));
                        return Ok(text);
                    }
                    text.extend(std::iter::repeat_n(']', run));
                }
                Some(c) => text.push(c),
                None => return Err(self.err(ErrorKind::UnexpectedEof("CDATA section"))),
            }
        }
    }

    /// Skips `<?...?>` processing instructions / XML declarations.
    fn skip_pi(&mut self) -> Result<()> {
        loop {
            match self.bump() {
                Some('?') if self.peek() == Some('>') => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => {}
                None => return Err(self.err(ErrorKind::UnexpectedEof("processing instruction"))),
            }
        }
    }

    /// Consumes a literal keyword such as `[CDATA[` or `DOCTYPE`.
    fn eat_keyword(&mut self, kw: &str, ctx: &'static str) -> Result<bool> {
        for (i, want) in kw.chars().enumerate() {
            match self.peek() {
                Some(c) if c == want => {
                    self.bump();
                }
                Some(_) if i == 0 => return Ok(false),
                Some(c) => {
                    return Err(self.err(ErrorKind::UnexpectedChar {
                        found: c,
                        expected: ctx,
                    }))
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof(ctx))),
            }
        }
        Ok(true)
    }

    /// Returns the next event, or an error.
    pub fn next_event(&mut self) -> Result<Event> {
        if let Some(name) = self.pending_end.take() {
            self.open.pop();
            if self.open.is_empty() {
                self.root_closed = true;
            }
            return Ok(Event::End { name });
        }
        if self.finished {
            return Ok(Event::Eof);
        }
        loop {
            match self.peek() {
                None => {
                    self.finished = true;
                    if !self.open.is_empty() {
                        return Err(self.err(ErrorKind::UnclosedElements(self.open.clone())));
                    }
                    if !self.seen_root {
                        return Err(self.err(ErrorKind::NoRoot));
                    }
                    return Ok(Event::Eof);
                }
                Some('<') => {
                    self.bump();
                    match self.peek() {
                        Some('/') => {
                            self.bump();
                            return self.read_end_tag();
                        }
                        Some('?') => {
                            self.bump();
                            self.skip_pi()?;
                            continue;
                        }
                        Some('!') => {
                            self.bump();
                            if self.eat_keyword("--", "comment")? {
                                return self.read_comment();
                            }
                            if self.eat_keyword("[CDATA[", "CDATA section")? {
                                let text = self.read_cdata()?;
                                if self.open.is_empty() {
                                    return Err(self.err(ErrorKind::ContentOutsideRoot));
                                }
                                return Ok(Event::Text(text));
                            }
                            return Err(
                                self.err(ErrorKind::Unsupported("DOCTYPE / markup declaration"))
                            );
                        }
                        _ => return self.read_start_tag(),
                    }
                }
                Some(_) => {
                    let mut text = String::new();
                    loop {
                        match self.peek() {
                            Some('<') | None => break,
                            Some('&') => {
                                self.bump();
                                text.push(self.read_entity()?);
                            }
                            Some(c) => {
                                text.push(c);
                                self.bump();
                            }
                        }
                    }
                    if self.open.is_empty() {
                        if text.chars().all(char::is_whitespace) {
                            continue; // inter-element whitespace outside root
                        }
                        return Err(self.err(ErrorKind::ContentOutsideRoot));
                    }
                    return Ok(Event::Text(text));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<Event> {
        let mut p = Parser::new(src);
        let mut out = Vec::new();
        loop {
            let e = p.next_event().unwrap();
            let eof = e == Event::Eof;
            out.push(e);
            if eof {
                break;
            }
        }
        out
    }

    fn error_of(src: &str) -> ErrorKind {
        let mut p = Parser::new(src);
        loop {
            match p.next_event() {
                Ok(Event::Eof) => panic!("expected error for {src:?}"),
                Ok(_) => {}
                Err(e) => return e.kind,
            }
        }
    }

    #[test]
    fn simple_document() {
        let evs = events("<a x=\"1\"><b/>hi</a>");
        assert_eq!(
            evs,
            vec![
                Event::Start {
                    name: "a".into(),
                    attributes: vec![("x".into(), "1".into())]
                },
                Event::Start {
                    name: "b".into(),
                    attributes: vec![]
                },
                Event::End { name: "b".into() },
                Event::Text("hi".into()),
                Event::End { name: "a".into() },
                Event::Eof,
            ]
        );
    }

    #[test]
    fn xml_declaration_and_comments_are_handled() {
        let evs = events("<?xml version=\"1.0\"?><!-- top --><r><!-- in --></r>");
        assert!(matches!(evs[0], Event::Comment(_)));
        assert!(matches!(evs[1], Event::Start { .. }));
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let evs = events("<a t=\"x &amp; y\">&lt;tag&gt; &#65;</a>");
        match &evs[0] {
            Event::Start { attributes, .. } => assert_eq!(attributes[0].1, "x & y"),
            other => panic!("{other:?}"),
        }
        assert_eq!(evs[1], Event::Text("<tag> A".into()));
    }

    #[test]
    fn cdata_is_verbatim() {
        let evs = events("<a><![CDATA[<not> & parsed ]]]></a>");
        assert_eq!(evs[1], Event::Text("<not> & parsed ]".into()));
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(matches!(
            error_of("<a><b></a></b>"),
            ErrorKind::MismatchedTag { .. }
        ));
        assert!(matches!(error_of("</a>"), ErrorKind::UnmatchedClose(_)));
        assert!(matches!(error_of("<a>"), ErrorKind::UnclosedElements(_)));
    }

    #[test]
    fn root_constraints() {
        assert!(matches!(error_of("<a/><b/>"), ErrorKind::MultipleRoots));
        assert!(matches!(error_of("hello"), ErrorKind::ContentOutsideRoot));
        assert!(matches!(error_of("  \n "), ErrorKind::NoRoot));
        assert!(matches!(error_of(""), ErrorKind::NoRoot));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(matches!(
            error_of("<a x=\"1\" x=\"2\"/>"),
            ErrorKind::DuplicateAttribute(_)
        ));
    }

    #[test]
    fn doctype_unsupported() {
        assert!(matches!(
            error_of("<!DOCTYPE html><a/>"),
            ErrorKind::Unsupported(_)
        ));
    }

    #[test]
    fn bad_entity_reported() {
        assert!(matches!(
            error_of("<a>&nope;</a>"),
            ErrorKind::InvalidEntity(_)
        ));
    }

    #[test]
    fn positions_track_lines() {
        let mut p = Parser::new("<a>\n  <b></c>\n</a>");
        loop {
            match p.next_event() {
                Err(e) => {
                    assert_eq!(e.position.line, 2);
                    break;
                }
                Ok(Event::Eof) => panic!("expected error"),
                Ok(_) => {}
            }
        }
    }

    #[test]
    fn single_quoted_attributes() {
        let evs = events("<a x='v'/>");
        match &evs[0] {
            Event::Start { attributes, .. } => assert_eq!(attributes[0], ("x".into(), "v".into())),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn whitespace_preserved_inside_root() {
        let evs = events("<a> \n </a>");
        assert_eq!(evs[1], Event::Text(" \n ".into()));
    }
}
