//! Serialization of a DOM back to XML text.

use crate::dom::{Document, Element, Node};
use crate::escape::{escape_attr, escape_text};

/// Formatting options for the [`Writer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOptions {
    /// Indent nested elements; text-bearing elements stay on one line.
    pub pretty: bool,
    /// Number of spaces per indentation level (ignored unless `pretty`).
    pub indent: usize,
    /// Emit `<?xml version="1.0" encoding="UTF-8"?>` first.
    pub declaration: bool,
}

impl WriteOptions {
    /// Single line, no declaration — the canonical form used in tests.
    pub fn compact() -> Self {
        WriteOptions {
            pretty: false,
            indent: 0,
            declaration: false,
        }
    }

    /// Two-space indentation with an XML declaration.
    pub fn pretty() -> Self {
        WriteOptions {
            pretty: true,
            indent: 2,
            declaration: true,
        }
    }
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions::compact()
    }
}

/// Serializes [`Document`]s / [`Element`]s according to [`WriteOptions`].
pub struct Writer {
    options: WriteOptions,
}

impl Writer {
    /// Creates a writer with the given options.
    pub fn new(options: WriteOptions) -> Self {
        Writer { options }
    }

    /// Serializes a whole document.
    pub fn document(&self, doc: &Document) -> String {
        let mut out = String::new();
        if self.options.declaration {
            out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
            if self.options.pretty {
                out.push('\n');
            }
        }
        self.element_into(&doc.root, 0, &mut out);
        if self.options.pretty {
            out.push('\n');
        }
        out
    }

    /// Serializes a single element (and subtree).
    pub fn element(&self, element: &Element) -> String {
        let mut out = String::new();
        self.element_into(element, 0, &mut out);
        out
    }

    fn element_into(&self, element: &Element, depth: usize, out: &mut String) {
        out.push('<');
        out.push_str(&element.name);
        for (name, value) in &element.attributes {
            out.push(' ');
            out.push_str(name);
            out.push_str("=\"");
            out.push_str(&escape_attr(value));
            out.push('"');
        }
        if element.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');

        // Pretty printing only between element children: if any child is a
        // text node we must not inject whitespace, or the content changes.
        let has_text = element.children.iter().any(|c| matches!(c, Node::Text(_)));
        let indent_children = self.options.pretty && !has_text;

        for child in &element.children {
            if indent_children {
                out.push('\n');
                out.push_str(&" ".repeat(self.options.indent * (depth + 1)));
            }
            match child {
                Node::Element(e) => self.element_into(e, depth + 1, out),
                Node::Text(t) => out.push_str(&escape_text(t)),
                Node::Comment(c) => {
                    out.push_str("<!--");
                    out.push_str(c);
                    out.push_str("-->");
                }
            }
        }
        if indent_children {
            out.push('\n');
            out.push_str(&" ".repeat(self.options.indent * depth));
        }
        out.push_str("</");
        out.push_str(&element.name);
        out.push('>');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;

    fn roundtrip(src: &str) -> Document {
        let doc = Document::parse(src).unwrap();
        let compact = doc.to_xml(WriteOptions::compact());
        Document::parse(&compact).unwrap()
    }

    #[test]
    fn compact_roundtrip_preserves_structure() {
        let doc = roundtrip("<a x=\"1 &amp; 2\"><b/><c>t &lt; u</c></a>");
        assert_eq!(doc.root.attr("x"), Some("1 & 2"));
        assert_eq!(doc.root.child_named("c").unwrap().text(), "t < u");
    }

    #[test]
    fn empty_element_self_closes() {
        let doc = Document::parse("<a></a>").unwrap();
        assert_eq!(doc.to_xml(WriteOptions::compact()), "<a/>");
    }

    #[test]
    fn pretty_never_injects_whitespace_into_text_elements() {
        let doc = Document::parse("<a><b>text</b></a>").unwrap();
        let pretty = doc.to_xml(WriteOptions::pretty());
        let doc2 = Document::parse(&pretty).unwrap();
        assert_eq!(doc2.root.child_named("b").unwrap().text(), "text");
    }

    #[test]
    fn declaration_emitted_when_requested() {
        let doc = Document::parse("<a/>").unwrap();
        assert!(doc.to_xml(WriteOptions::pretty()).starts_with("<?xml"));
        assert!(!doc.to_xml(WriteOptions::compact()).starts_with("<?xml"));
    }

    #[test]
    fn attribute_escaping_roundtrips() {
        let mut e = crate::Element::new("a");
        e.set_attr("v", "x\"y<z>&\n\t");
        let doc = Document::new(e);
        let text = doc.to_xml(WriteOptions::compact());
        let doc2 = Document::parse(&text).unwrap();
        assert_eq!(doc2.root.attr("v"), Some("x\"y<z>&\n\t"));
    }

    #[test]
    fn comments_roundtrip() {
        let doc = roundtrip("<a><!-- hello --><b/></a>");
        assert!(matches!(doc.root.children[0], crate::Node::Comment(ref c) if c.contains("hello")));
    }
}
