//! Error and result types for XML parsing and document handling.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// A position inside the source text, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in Unicode scalar values).
    pub column: u32,
}

impl Position {
    /// The start of the document.
    pub const START: Position = Position { line: 1, column: 1 };
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// An XML parse or structure error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Where in the source the error was detected.
    pub position: Position,
    /// What went wrong.
    pub kind: ErrorKind,
}

impl Error {
    pub(crate) fn new(position: Position, kind: ErrorKind) -> Self {
        Error { position, kind }
    }
}

/// The category of an [`Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// The input ended in the middle of a construct.
    UnexpectedEof(&'static str),
    /// A character that is not allowed at this point.
    UnexpectedChar {
        /// The character found.
        found: char,
        /// What the parser expected instead.
        expected: &'static str,
    },
    /// A closing tag does not match the innermost open tag.
    MismatchedTag {
        /// Name of the currently open element.
        open: String,
        /// Name found in the closing tag.
        close: String,
    },
    /// A closing tag with no matching open tag.
    UnmatchedClose(String),
    /// The document ended while elements were still open.
    UnclosedElements(Vec<String>),
    /// An element or attribute name is empty or malformed.
    InvalidName(String),
    /// The same attribute appears twice on one element.
    DuplicateAttribute(String),
    /// A `&...;` reference that cannot be resolved.
    InvalidEntity(String),
    /// Content found outside the root element.
    ContentOutsideRoot,
    /// More than one root element.
    MultipleRoots,
    /// The document has no root element at all.
    NoRoot,
    /// An unsupported construct (e.g. a DTD internal subset).
    Unsupported(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at {}: ", self.position)?;
        match &self.kind {
            ErrorKind::UnexpectedEof(ctx) => {
                write!(f, "unexpected end of input while parsing {ctx}")
            }
            ErrorKind::UnexpectedChar { found, expected } => {
                write!(f, "unexpected character {found:?}, expected {expected}")
            }
            ErrorKind::MismatchedTag { open, close } => {
                write!(
                    f,
                    "closing tag </{close}> does not match open element <{open}>"
                )
            }
            ErrorKind::UnmatchedClose(name) => {
                write!(f, "closing tag </{name}> has no open element")
            }
            ErrorKind::UnclosedElements(names) => {
                write!(
                    f,
                    "document ended with unclosed elements: {}",
                    names.join(", ")
                )
            }
            ErrorKind::InvalidName(name) => write!(f, "invalid XML name {name:?}"),
            ErrorKind::DuplicateAttribute(name) => write!(f, "duplicate attribute {name:?}"),
            ErrorKind::InvalidEntity(ent) => write!(f, "invalid entity reference &{ent};"),
            ErrorKind::ContentOutsideRoot => {
                write!(f, "non-whitespace content outside the root element")
            }
            ErrorKind::MultipleRoots => write!(f, "more than one root element"),
            ErrorKind::NoRoot => write!(f, "document contains no root element"),
            ErrorKind::Unsupported(what) => write!(f, "unsupported XML construct: {what}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_position_and_message() {
        let err = Error::new(
            Position { line: 3, column: 7 },
            ErrorKind::UnmatchedClose("foo".into()),
        );
        let msg = err.to_string();
        assert!(msg.contains("3:7"), "{msg}");
        assert!(msg.contains("</foo>"), "{msg}");
    }

    #[test]
    fn position_start_is_one_one() {
        assert_eq!(Position::START.line, 1);
        assert_eq!(Position::START.column, 1);
    }
}
