//! # xmlio — minimal XML 1.0 subset for model interchange
//!
//! The UPSIM methodology (Dittrich et al., IPPS 2013) exchanges its models as
//! XML documents: the *service mapping* file (paper Fig. 3) and the XMI-style
//! serializations of the UML models. The paper's implementation used the Java
//! XML stack inside Eclipse; this crate is the Rust substrate replacing it.
//!
//! The crate provides three layers:
//!
//! * [`parser`] — a pull-based event parser ([`parser::Event`]) over a UTF-8
//!   string, tracking line/column positions for diagnostics,
//! * [`dom`] — a simple document object model ([`dom::Document`],
//!   [`dom::Element`]) built on top of the event stream,
//! * [`writer`] — serialization of a DOM back to text, with optional
//!   pretty-printing and guaranteed escaping.
//!
//! Supported XML subset: elements, attributes, character data, CDATA
//! sections, comments, processing instructions and the XML declaration
//! (both skipped on input), numeric and the five predefined entity
//! references. Not supported (rejected with a clear error): DTDs with
//! internal subsets, custom entities, non-UTF-8 encodings.
//!
//! ```
//! let doc = xmlio::parse("<mapping><atomicservice id=\"as1\"/></mapping>").unwrap();
//! assert_eq!(doc.root.name, "mapping");
//! assert_eq!(doc.root.children_named("atomicservice").count(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dom;
pub mod error;
pub mod escape;
pub mod parser;
pub mod writer;

pub use dom::{Document, Element, Node};
pub use error::{Error, Result};
pub use parser::{Event, Parser};
pub use writer::{WriteOptions, Writer};

/// Parses a complete XML document into a [`Document`].
///
/// This is the convenience entry point used by the model importers; it is
/// equivalent to driving a [`Parser`] through [`dom::Document::from_events`].
pub fn parse(input: &str) -> Result<Document> {
    Document::parse(input)
}

/// Serializes a [`Document`] to a compact, single-line string.
pub fn to_string(doc: &Document) -> String {
    Writer::new(WriteOptions::compact()).document(doc)
}

/// Serializes a [`Document`] with two-space indentation.
pub fn to_string_pretty(doc: &Document) -> String {
    Writer::new(WriteOptions::pretty()).document(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_reserialize_mapping_file() {
        // The exact shape of the paper's Fig. 3.
        let src = "<atomicservice id=\"atomic_service_1\">\
                   <requester id=\"component_a\"></requester>\
                   <provider id=\"component_b\"></provider>\
                   </atomicservice>";
        let doc = parse(src).unwrap();
        assert_eq!(doc.root.name, "atomicservice");
        assert_eq!(doc.root.attr("id"), Some("atomic_service_1"));
        let rq = doc.root.child_named("requester").unwrap();
        assert_eq!(rq.attr("id"), Some("component_a"));
        let out = to_string(&doc);
        let doc2 = parse(&out).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let doc = parse("<a><b x=\"1\"/><c>text</c></a>").unwrap();
        let pretty = to_string_pretty(&doc);
        assert!(pretty.contains('\n'));
        let doc2 = parse(&pretty).unwrap();
        assert_eq!(doc2.root.child_named("b").unwrap().attr("x"), Some("1"));
    }
}
