//! A simple document object model built from the event stream.

use crate::error::{Error, ErrorKind, Position, Result};
use crate::parser::{Event, Parser};
use crate::writer::{WriteOptions, Writer};

/// A child node of an [`Element`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data.
    Text(String),
    /// A comment (`<!-- ... -->`).
    Comment(String),
}

impl Node {
    /// Returns the contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }
}

/// An XML element: name, attributes (in document order) and children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Element (tag) name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an empty element named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style: adds an attribute and returns `self`.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder-style: appends a child element and returns `self`.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: appends character data and returns `self`.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Sets (or replaces) an attribute value.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a mandatory attribute, with a descriptive error.
    pub fn require_attr(&self, name: &str) -> Result<&str> {
        self.attr(name).ok_or_else(|| {
            Error::new(
                Position::START,
                ErrorKind::InvalidName(format!(
                    "<{}> is missing required attribute '{}'",
                    self.name, name
                )),
            )
        })
    }

    /// Appends a child element.
    pub fn push_element(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Iterates over child elements (skipping text and comments).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Iterates over child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// Returns the first child element with the given tag name.
    pub fn child_named(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Concatenated character data of the direct children (no recursion).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let Node::Text(t) = c {
                out.push_str(t);
            }
        }
        out
    }

    /// Recursively counts elements in this subtree, including `self`.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_size)
            .sum::<usize>()
    }
}

/// A parsed XML document: a root element (comments around it are dropped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The root element.
    pub root: Element,
}

impl Document {
    /// Wraps a root element into a document.
    pub fn new(root: Element) -> Self {
        Document { root }
    }

    /// Parses a complete document from `input`.
    pub fn parse(input: &str) -> Result<Document> {
        let mut parser = Parser::new(input);
        Self::from_events(&mut parser)
    }

    /// Builds the document by draining `parser` until [`Event::Eof`].
    pub fn from_events(parser: &mut Parser<'_>) -> Result<Document> {
        let mut stack: Vec<Element> = Vec::new();
        let mut root: Option<Element> = None;
        loop {
            match parser.next_event()? {
                Event::Start { name, attributes } => {
                    stack.push(Element {
                        name,
                        attributes,
                        children: Vec::new(),
                    });
                }
                Event::End { .. } => {
                    let done = stack.pop().expect("parser guarantees balance");
                    if let Some(parent) = stack.last_mut() {
                        parent.children.push(Node::Element(done));
                    } else {
                        root = Some(done);
                    }
                }
                Event::Text(t) => {
                    if let Some(parent) = stack.last_mut() {
                        // Merge adjacent text nodes (e.g. around entities).
                        if let Some(Node::Text(prev)) = parent.children.last_mut() {
                            prev.push_str(&t);
                        } else {
                            parent.children.push(Node::Text(t));
                        }
                    }
                }
                Event::Comment(c) => {
                    if let Some(parent) = stack.last_mut() {
                        parent.children.push(Node::Comment(c));
                    }
                    // Comments outside the root are dropped.
                }
                Event::Eof => break,
            }
        }
        root.map(Document::new)
            .ok_or_else(|| Error::new(parser.position(), ErrorKind::NoRoot))
    }

    /// Serializes with the given options.
    pub fn to_xml(&self, options: WriteOptions) -> String {
        Writer::new(options).document(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_api_constructs_expected_tree() {
        let e = Element::new("atomicservice")
            .with_attr("id", "as1")
            .with_child(Element::new("requester").with_attr("id", "t1"))
            .with_child(Element::new("provider").with_attr("id", "printS"));
        assert_eq!(e.attr("id"), Some("as1"));
        assert_eq!(e.child_elements().count(), 2);
        assert_eq!(
            e.child_named("provider").unwrap().attr("id"),
            Some("printS")
        );
        assert_eq!(e.subtree_size(), 3);
    }

    #[test]
    fn set_attr_replaces_existing() {
        let mut e = Element::new("x");
        e.set_attr("a", "1");
        e.set_attr("a", "2");
        assert_eq!(e.attributes.len(), 1);
        assert_eq!(e.attr("a"), Some("2"));
    }

    #[test]
    fn parse_builds_nested_structure() {
        let doc = Document::parse("<s><m id=\"1\"><q>hi</q></m><m id=\"2\"/></s>").unwrap();
        assert_eq!(doc.root.children_named("m").count(), 2);
        let first = doc.root.child_named("m").unwrap();
        assert_eq!(first.child_named("q").unwrap().text(), "hi");
    }

    #[test]
    fn adjacent_text_merges() {
        let doc = Document::parse("<a>x&amp;y</a>").unwrap();
        assert_eq!(doc.root.children.len(), 1);
        assert_eq!(doc.root.text(), "x&y");
    }

    #[test]
    fn require_attr_errors_helpfully() {
        let e = Element::new("provider");
        let err = e.require_attr("id").unwrap_err();
        assert!(err.to_string().contains("provider"));
        assert!(err.to_string().contains("id"));
    }

    #[test]
    fn comments_preserved_inside_root() {
        let doc = Document::parse("<a><!-- note --><b/></a>").unwrap();
        assert!(matches!(doc.root.children[0], Node::Comment(_)));
    }
}
