//! Property-based roundtrip tests: any generated DOM tree survives
//! write → parse unchanged, under both compact and pretty options.

use proptest::prelude::*;
use xmlio::{Document, Element, Node, WriteOptions};

/// Strategy for XML names (a conservative subset).
fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_.-]{0,8}"
}

/// Strategy for attribute/text content, including characters that must be
/// escaped.
fn content_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('<'),
            Just('>'),
            Just('&'),
            Just('"'),
            Just('\''),
            Just(' '),
            Just('\n'),
            Just('\t'),
            Just('\u{00e9}'),
            Just('\u{4e2d}'),
        ],
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        proptest::collection::vec((name_strategy(), content_strategy()), 0..3),
        content_strategy(),
    )
        .prop_map(|(name, attrs, text)| {
            let mut e = Element::new(name);
            for (n, v) in attrs {
                e.set_attr(n, v); // dedupes names
            }
            if !text.is_empty() {
                e.children.push(Node::Text(text));
            }
            e
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), content_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (n, v) in attrs {
                    e.set_attr(n, v);
                }
                for c in children {
                    e.children.push(Node::Element(c));
                }
                e
            })
    })
}

proptest! {
    #[test]
    fn compact_roundtrip(root in element_strategy()) {
        let doc = Document::new(root);
        let text = doc.to_xml(WriteOptions::compact());
        let parsed = Document::parse(&text).unwrap();
        prop_assert_eq!(parsed, doc);
    }

    #[test]
    fn pretty_roundtrip_preserves_elements_attrs_and_text(root in element_strategy()) {
        let doc = Document::new(root);
        let text = doc.to_xml(WriteOptions::pretty());
        let parsed = Document::parse(&text).unwrap();
        // Pretty printing may add whitespace-only text nodes between element
        // children; compare after stripping those.
        fn strip(e: &Element) -> Element {
            let mut out = Element::new(e.name.clone());
            out.attributes = e.attributes.clone();
            for c in &e.children {
                match c {
                    Node::Element(child) => out.children.push(Node::Element(strip(child))),
                    Node::Text(t) if t.chars().all(char::is_whitespace) && !t.is_empty() => {}
                    other => out.children.push(other.clone()),
                }
            }
            out
        }
        prop_assert_eq!(strip(&parsed.root), strip(&doc.root));
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC{0,64}") {
        let _ = Document::parse(&input);
    }
}
