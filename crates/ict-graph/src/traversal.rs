//! Depth-first and breadth-first traversal.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Iterative depth-first traversal from a start node.
pub struct Dfs {
    stack: Vec<NodeId>,
    visited: Vec<bool>,
}

impl Dfs {
    /// Creates a DFS rooted at `start`.
    pub fn new<N, E>(graph: &Graph<N, E>, start: NodeId) -> Self {
        let mut visited = vec![false; graph.node_capacity()];
        let mut stack = Vec::new();
        if graph.contains_node(start) {
            stack.push(start);
            visited[start.index()] = true;
        }
        Dfs { stack, visited }
    }

    /// Advances the traversal, returning the next node in DFS pre-order.
    pub fn next<N, E>(&mut self, graph: &Graph<N, E>) -> Option<NodeId> {
        let node = self.stack.pop()?;
        // Push neighbours in reverse so the first-inserted neighbour is
        // visited first (stable, insertion-ordered traversal).
        let neighbors: Vec<_> = graph.neighbors(node).collect();
        for adj in neighbors.into_iter().rev() {
            if !self.visited[adj.node.index()] {
                self.visited[adj.node.index()] = true;
                self.stack.push(adj.node);
            }
        }
        Some(node)
    }
}

/// Iterative breadth-first traversal from a start node.
pub struct Bfs {
    queue: VecDeque<NodeId>,
    visited: Vec<bool>,
}

impl Bfs {
    /// Creates a BFS rooted at `start`.
    pub fn new<N, E>(graph: &Graph<N, E>, start: NodeId) -> Self {
        let mut visited = vec![false; graph.node_capacity()];
        let mut queue = VecDeque::new();
        if graph.contains_node(start) {
            queue.push_back(start);
            visited[start.index()] = true;
        }
        Bfs { queue, visited }
    }

    /// Advances the traversal, returning the next node in BFS order.
    pub fn next<N, E>(&mut self, graph: &Graph<N, E>) -> Option<NodeId> {
        let node = self.queue.pop_front()?;
        for adj in graph.neighbors(node) {
            if !self.visited[adj.node.index()] {
                self.visited[adj.node.index()] = true;
                self.queue.push_back(adj.node);
            }
        }
        Some(node)
    }
}

/// The set of nodes reachable from `start` (including `start`).
pub fn reachable_from<N, E>(graph: &Graph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut dfs = Dfs::new(graph, start);
    let mut out = Vec::new();
    while let Some(n) = dfs.next(graph) {
        out.push(n);
    }
    out
}

/// `true` if `target` is reachable from `source`.
pub fn is_reachable<N, E>(graph: &Graph<N, E>, source: NodeId, target: NodeId) -> bool {
    let mut dfs = Dfs::new(graph, source);
    while let Some(n) = dfs.next(graph) {
        if n == target {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn chain(n: usize) -> (Graph<usize, ()>, Vec<NodeId>) {
        let mut g = Graph::new_undirected();
        let ids: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        (g, ids)
    }

    #[test]
    fn dfs_visits_all_reachable_once() {
        let (g, ids) = chain(5);
        let order = reachable_from(&g, ids[0]);
        assert_eq!(order, ids);
    }

    #[test]
    fn bfs_visits_in_level_order() {
        // star: center 0 with leaves 1..=3, leaf 3 chains to 4
        let mut g: Graph<usize, ()> = Graph::new_undirected();
        let ids: Vec<_> = (0..5).map(|i| g.add_node(i)).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[0], ids[2], ());
        g.add_edge(ids[0], ids[3], ());
        g.add_edge(ids[3], ids[4], ());
        let mut bfs = Bfs::new(&g, ids[0]);
        let mut order = Vec::new();
        while let Some(n) = bfs.next(&g) {
            order.push(n);
        }
        assert_eq!(order, vec![ids[0], ids[1], ids[2], ids[3], ids[4]]);
    }

    #[test]
    fn reachability_respects_components() {
        let (mut g, ids) = chain(4);
        let island = g.add_node(99);
        assert!(is_reachable(&g, ids[0], ids[3]));
        assert!(!is_reachable(&g, ids[0], island));
        assert!(is_reachable(&g, island, island));
    }

    #[test]
    fn directed_reachability_is_one_way() {
        let mut g: Graph<(), ()> = Graph::new_directed();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        assert!(is_reachable(&g, a, b));
        assert!(!is_reachable(&g, b, a));
    }
}
