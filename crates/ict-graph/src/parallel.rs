//! Parallel all-simple-paths enumeration.
//!
//! The venue of the paper (IPPS) is a parallel-processing symposium and the
//! path discovery is the only super-polynomial step of the methodology
//! (Sec. V-D: `O(n!)` on complete graphs). This module parallelizes it with
//! a two-phase scheme:
//!
//! 1. **Prefix expansion** (sequential): a bounded BFS expands partial paths
//!    from the source until at least `tasks_per_thread × threads` open
//!    prefixes exist (completed paths encountered on the way are collected
//!    directly).
//! 2. **Fan-out** (parallel): the open prefixes are distributed over a
//!    crossbeam scope; every worker finishes its prefixes with the same
//!    sequential DFS used by [`crate::paths::simple_paths`].
//!
//! The result is the *same multiset of paths* as the sequential enumeration
//! (ordering differs; both sides sort in the equivalence tests).
//!
//! `limits.max_paths` bounds **work**, not just output: all workers share an
//! atomic emitted-path counter and stop searching once it reaches the cap,
//! so a capped run on a dense graph visits a small fraction of the frames an
//! uncapped run would (see [`parallel_simple_paths_counted`], which reports
//! the frame count). *Which* `min(cap, total)` paths survive is
//! scheduling-dependent — the output is still sorted, but it is not
//! necessarily a prefix of the full sorted enumeration.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::paths::{EnumerationStats, Path, PathLimits};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tuning options for [`parallel_simple_paths`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelOptions {
    /// Number of worker threads (0 = available parallelism).
    pub threads: usize,
    /// Desired open prefixes per worker before fanning out.
    pub tasks_per_thread: usize,
    /// Per-path limits. `max_paths` is enforced *during* the search via a
    /// shared atomic counter (early stop), not by post-merge truncation.
    pub limits: PathLimits,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: 0,
            tasks_per_thread: 16,
            limits: PathLimits::unlimited(),
        }
    }
}

fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// A partial path under expansion.
#[derive(Debug, Clone)]
struct Prefix {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

/// Enumerates all simple paths from `source` to `target` in parallel.
///
/// Returns the paths sorted lexicographically (by node sequence, then edge
/// sequence). Without `max_paths` the output is deterministic regardless of
/// scheduling; with a cap, the *count* (`min(cap, total)`) is deterministic
/// but which paths survive depends on worker scheduling.
pub fn parallel_simple_paths<N: Sync, E: Sync>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    options: ParallelOptions,
) -> Vec<Path> {
    parallel_simple_paths_counted(graph, source, target, options).0
}

/// [`parallel_simple_paths`] plus [`EnumerationStats`]: total DFS frames
/// pushed across phase 1 and all workers (the work bounded by `max_paths`)
/// and the number of returned paths.
pub fn parallel_simple_paths_counted<N: Sync, E: Sync>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    options: ParallelOptions,
) -> (Vec<Path>, EnumerationStats) {
    parallel_simple_paths_pruned(graph, source, target, options, None)
}

/// The full-featured parallel enumerator: like
/// [`parallel_simple_paths_counted`] but with an optional node `mask`
/// restricting the search (same semantics as
/// [`crate::paths::for_each_simple_path`]: a `false` entry behaves like a
/// removed node). [`crate::prune::BlockCutTree::relevant_nodes`] masks are
/// path-multiset-preserving, so a pruned parallel run returns the same
/// sorted output as an unpruned one.
pub fn parallel_simple_paths_pruned<N: Sync, E: Sync>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    options: ParallelOptions,
    mask: Option<&[bool]>,
) -> (Vec<Path>, EnumerationStats) {
    let mut stats = EnumerationStats::default();
    let allowed = |n: NodeId| mask.is_none_or(|m| m.get(n.index()).copied().unwrap_or(false));
    if !graph.contains_node(source)
        || !graph.contains_node(target)
        || !allowed(source)
        || !allowed(target)
    {
        return (Vec::new(), stats);
    }
    let cap = options.limits.max_paths.unwrap_or(usize::MAX);
    if cap == 0 {
        return (Vec::new(), stats);
    }
    if source == target {
        stats.emitted = 1;
        return (
            vec![Path {
                nodes: vec![source],
                edges: vec![],
            }],
            stats,
        );
    }
    let threads = effective_threads(options.threads);
    let want_tasks = threads.saturating_mul(options.tasks_per_thread).max(1);

    // Phase 1: BFS prefix expansion, stopping as soon as the cap is
    // already satisfied by directly-collected complete paths.
    let mut complete: Vec<Path> = Vec::new();
    let mut open: VecDeque<Prefix> = VecDeque::new();
    open.push_back(Prefix {
        nodes: vec![source],
        edges: vec![],
    });
    stats.frames += 1;
    while open.len() < want_tasks && complete.len() < cap {
        let Some(prefix) = open.pop_front() else {
            break;
        };
        let head = *prefix.nodes.last().expect("non-empty prefix");
        let mut extended = false;
        for adj in graph.neighbors(head) {
            if adj.node == target {
                if options
                    .limits
                    .max_nodes
                    .is_none_or(|cap| prefix.nodes.len() < cap)
                {
                    let mut nodes = prefix.nodes.clone();
                    nodes.push(target);
                    let mut edges = prefix.edges.clone();
                    edges.push(adj.edge);
                    complete.push(Path { nodes, edges });
                }
                continue;
            }
            if prefix.nodes.contains(&adj.node) || !allowed(adj.node) {
                continue;
            }
            if options
                .limits
                .max_nodes
                .is_some_and(|cap| prefix.nodes.len() + 2 > cap)
            {
                continue;
            }
            let mut nodes = prefix.nodes.clone();
            nodes.push(adj.node);
            let mut edges = prefix.edges.clone();
            edges.push(adj.edge);
            open.push_back(Prefix { nodes, edges });
            stats.frames += 1;
            extended = true;
        }
        let _ = extended;
        if open.is_empty() {
            break;
        }
    }

    // Phase 2: parallel completion of the open prefixes. Each worker sorts
    // its own output so the (serial) final step is only a k-way merge —
    // a global sort would otherwise dominate and erase the speedup. The
    // shared `emitted` counter is seeded with the phase-1 completions;
    // workers stop searching once it reaches the cap, so the cap bounds
    // work, not just output size.
    complete.sort();
    let emitted = AtomicUsize::new(complete.len());
    let prefixes: Vec<Prefix> = if complete.len() >= cap {
        Vec::new() // the cap is already met; skip the fan-out entirely
    } else {
        open.into()
    };
    let mut sorted_chunks: Vec<Vec<Path>> = vec![complete];
    if !prefixes.is_empty() {
        let chunk = prefixes.len().div_ceil(threads);
        let emitted = &emitted;
        let results = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for batch in prefixes.chunks(chunk) {
                handles.push(scope.spawn(move |_| {
                    let mut local = Vec::new();
                    let mut frames = 0usize;
                    for p in batch {
                        if emitted.load(Ordering::Relaxed) >= cap {
                            break;
                        }
                        complete_prefix(
                            graph,
                            p,
                            target,
                            options.limits,
                            mask,
                            cap,
                            emitted,
                            &mut frames,
                            &mut local,
                        );
                    }
                    local.sort();
                    (local, frames)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<(Vec<Path>, usize)>>()
        })
        .expect("crossbeam scope");
        for (local, frames) in results {
            stats.frames += frames;
            sorted_chunks.push(local);
        }
    }

    let mut merged = merge_sorted(sorted_chunks);
    // Prefixes are pairwise distinct, so paths from different chunks can
    // never coincide — no dedup needed. Workers may overshoot the cap by
    // the paths they emitted before observing the counter; trim the excess.
    merged.truncate(cap.min(merged.len()));
    stats.emitted = merged.len();
    (merged, stats)
}

/// K-way merge of individually sorted path lists.
fn merge_sorted(mut chunks: Vec<Vec<Path>>) -> Vec<Path> {
    chunks.retain(|c| !c.is_empty());
    match chunks.len() {
        0 => return Vec::new(),
        1 => return chunks.pop().expect("len checked"),
        _ => {}
    }
    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Cursor per chunk; a linear scan over ≤ threads+1 heads is cheaper
    // than a heap for realistic worker counts. Paths are *moved* out of
    // their chunks (taking a drained path is O(1) via the cursor), never
    // cloned — cloning 10⁵ paths would serialize the run again.
    let mut cursors = vec![0usize; chunks.len()];
    for _ in 0..total {
        let mut best = usize::MAX;
        for (i, chunk) in chunks.iter().enumerate() {
            if cursors[i] < chunk.len()
                && (best == usize::MAX || chunk[cursors[i]] < chunks[best][cursors[best]])
            {
                best = i;
            }
        }
        let taken = std::mem::replace(
            &mut chunks[best][cursors[best]],
            Path {
                nodes: Vec::new(),
                edges: Vec::new(),
            },
        );
        out.push(taken);
        cursors[best] += 1;
    }
    out
}

/// Sequential DFS completing a single prefix (the paper's algorithm with the
/// path-tracking set seeded from the prefix). Aborts as soon as the shared
/// `emitted` counter reaches `cap`; `frames` accumulates stack pushes so
/// callers can assert how much work the cap actually saved.
#[allow(clippy::too_many_arguments)]
fn complete_prefix<N, E>(
    graph: &Graph<N, E>,
    prefix: &Prefix,
    target: NodeId,
    limits: PathLimits,
    mask: Option<&[bool]>,
    cap: usize,
    emitted: &AtomicUsize,
    frames: &mut usize,
    out: &mut Vec<Path>,
) {
    struct Frame {
        neighbors: Vec<crate::graph::Adjacency>,
        cursor: usize,
    }
    let mut on_path = vec![false; graph.node_capacity()];
    for &n in &prefix.nodes {
        on_path[n.index()] = true;
    }
    let mut nodes = prefix.nodes.clone();
    let mut edges = prefix.edges.clone();
    let head = *nodes.last().expect("non-empty prefix");
    let mut stack = vec![Frame {
        neighbors: graph.neighbors(head).collect(),
        cursor: 0,
    }];
    *frames += 1;

    while let Some(frame) = stack.last_mut() {
        if emitted.load(Ordering::Relaxed) >= cap {
            return; // another worker (or this one) satisfied the cap
        }
        if frame.cursor >= frame.neighbors.len() {
            stack.pop();
            if !stack.is_empty() {
                let n = nodes.pop().expect("aligned");
                on_path[n.index()] = false;
                edges.pop();
            }
            continue;
        }
        let adj = frame.neighbors[frame.cursor];
        frame.cursor += 1;
        if adj.node == target {
            if limits.max_nodes.is_none_or(|cap| nodes.len() < cap) {
                let mut pn = nodes.clone();
                pn.push(target);
                let mut pe = edges.clone();
                pe.push(adj.edge);
                out.push(Path {
                    nodes: pn,
                    edges: pe,
                });
                emitted.fetch_add(1, Ordering::Relaxed);
            }
            continue;
        }
        if on_path[adj.node.index()]
            || mask.is_some_and(|m| !m.get(adj.node.index()).copied().unwrap_or(false))
        {
            continue;
        }
        if limits.max_nodes.is_some_and(|cap| nodes.len() + 2 > cap) {
            continue;
        }
        on_path[adj.node.index()] = true;
        nodes.push(adj.node);
        edges.push(adj.edge);
        stack.push(Frame {
            neighbors: graph.neighbors(adj.node).collect(),
            cursor: 0,
        });
        *frames += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::all_simple_paths;

    fn complete_graph(n: usize) -> (Graph<usize, ()>, Vec<NodeId>) {
        let mut g = Graph::new_undirected();
        let ids: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(ids[i], ids[j], ());
            }
        }
        (g, ids)
    }

    fn assert_matches_sequential(g: &Graph<usize, ()>, s: NodeId, t: NodeId) {
        let mut seq = all_simple_paths(g, s, t);
        seq.sort();
        for threads in [1, 2, 4] {
            let par = parallel_simple_paths(
                g,
                s,
                t,
                ParallelOptions {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn matches_sequential_on_complete_graphs() {
        for n in 2..=7 {
            let (g, ids) = complete_graph(n);
            assert_matches_sequential(&g, ids[0], ids[n - 1]);
        }
    }

    #[test]
    fn matches_sequential_on_ring() {
        let mut g: Graph<usize, ()> = Graph::new_undirected();
        let ids: Vec<_> = (0..8).map(|i| g.add_node(i)).collect();
        for i in 0..8 {
            g.add_edge(ids[i], ids[(i + 1) % 8], ());
        }
        assert_matches_sequential(&g, ids[0], ids[4]);
    }

    #[test]
    fn trivial_and_unreachable_cases() {
        let (g, ids) = complete_graph(3);
        let same = parallel_simple_paths(&g, ids[0], ids[0], ParallelOptions::default());
        assert_eq!(same.len(), 1);
        assert!(same[0].is_empty());

        let mut g2: Graph<usize, ()> = Graph::new_undirected();
        let a = g2.add_node(0);
        let b = g2.add_node(1);
        assert!(parallel_simple_paths(&g2, a, b, ParallelOptions::default()).is_empty());
    }

    #[test]
    fn max_paths_caps_count_with_valid_member_paths() {
        let (g, ids) = complete_graph(6);
        let limits = PathLimits::unlimited().with_max_paths(5);
        let par = parallel_simple_paths(
            &g,
            ids[0],
            ids[5],
            ParallelOptions {
                limits,
                ..Default::default()
            },
        );
        // Early stopping makes *which* 5 paths survive scheduling-dependent,
        // so assert cap semantics: exactly 5 sorted, distinct, genuine paths.
        assert_eq!(par.len(), 5);
        assert!(par.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        let full: std::collections::HashSet<_> =
            all_simple_paths(&g, ids[0], ids[5]).into_iter().collect();
        for p in &par {
            assert!(p.validate(&g));
            assert!(full.contains(p), "capped output invented a path: {p:?}");
        }
        // A cap at/above the total must not lose anything.
        let loose = parallel_simple_paths(
            &g,
            ids[0],
            ids[5],
            ParallelOptions {
                limits: PathLimits::unlimited().with_max_paths(full.len() + 10),
                ..Default::default()
            },
        );
        assert_eq!(loose.len(), full.len());
    }

    #[test]
    fn max_paths_zero_short_circuits() {
        let (g, ids) = complete_graph(4);
        let (paths, stats) = parallel_simple_paths_counted(
            &g,
            ids[0],
            ids[3],
            ParallelOptions {
                limits: PathLimits::unlimited().with_max_paths(0),
                ..Default::default()
            },
        );
        assert!(paths.is_empty());
        assert_eq!(stats.frames, 0);
    }

    #[test]
    fn capped_run_visits_far_fewer_frames_than_uncapped() {
        // Dense graph: K9 has tens of thousands of simple paths between two
        // vertices; a cap of 5 must stop the workers almost immediately.
        let (g, ids) = complete_graph(9);
        let base = ParallelOptions {
            threads: 2,
            ..Default::default()
        };
        let (all, uncapped) = parallel_simple_paths_counted(&g, ids[0], ids[8], base);
        // Cap large enough that phase 1 cannot satisfy it alone — the early
        // stop must happen inside the fanned-out workers.
        let (some, capped) = parallel_simple_paths_counted(
            &g,
            ids[0],
            ids[8],
            ParallelOptions {
                limits: PathLimits::unlimited().with_max_paths(200),
                ..base
            },
        );
        assert_eq!(some.len(), 200);
        assert_eq!(uncapped.emitted, all.len());
        assert!(
            capped.frames * 10 < uncapped.frames,
            "cap must bound work: {} capped vs {} uncapped frames",
            capped.frames,
            uncapped.frames
        );
    }

    #[test]
    fn mask_restricts_parallel_search() {
        // Square 0-1-3 / 0-2-3: masking out node 2 leaves only the 0-1-3 route.
        let mut g: Graph<usize, ()> = Graph::new_undirected();
        let ids: Vec<_> = (0..4).map(|i| g.add_node(i)).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[3], ());
        g.add_edge(ids[0], ids[2], ());
        g.add_edge(ids[2], ids[3], ());
        let mut mask = vec![true; g.node_capacity()];
        mask[ids[2].index()] = false;
        let (paths, _) = parallel_simple_paths_pruned(
            &g,
            ids[0],
            ids[3],
            ParallelOptions::default(),
            Some(&mask),
        );
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes, vec![ids[0], ids[1], ids[3]]);
        // Masking an endpoint yields nothing.
        mask[ids[3].index()] = false;
        let (paths, stats) = parallel_simple_paths_pruned(
            &g,
            ids[0],
            ids[3],
            ParallelOptions::default(),
            Some(&mask),
        );
        assert!(paths.is_empty());
        assert_eq!(stats.frames, 0);
    }

    #[test]
    fn max_nodes_respected() {
        let (g, ids) = complete_graph(5);
        let limits = PathLimits::unlimited().with_max_nodes(3);
        let par = parallel_simple_paths(
            &g,
            ids[0],
            ids[4],
            ParallelOptions {
                limits,
                ..Default::default()
            },
        );
        assert!(par.iter().all(|p| p.nodes.len() <= 3));
        assert_eq!(par.len(), 4); // direct + 3 one-intermediate
    }
}
