//! Connectivity analysis: components, bridges, articulation points.
//!
//! Bridges and articulation points are the single points of failure of an
//! infrastructure — the UPSIM outlook (paper Sec. VII) motivates exactly this
//! kind of "where can the service problem be caused" analysis.

use crate::graph::{EdgeId, Graph, NodeId};

/// Partitions live nodes into connected components (edge direction ignored).
pub fn connected_components<N, E>(graph: &Graph<N, E>) -> Vec<Vec<NodeId>> {
    let cap = graph.node_capacity();
    let mut comp = vec![usize::MAX; cap];
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    for start in graph.node_ids() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut stack = vec![start];
        comp[start.index()] = id;
        while let Some(n) = stack.pop() {
            members.push(n);
            for adj in graph.neighbors(n).chain(graph.in_neighbors(n)) {
                if comp[adj.node.index()] == usize::MAX {
                    comp[adj.node.index()] = id;
                    stack.push(adj.node);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// `true` if all live nodes are in one component (empty graphs count as
/// connected).
pub fn is_connected<N, E>(graph: &Graph<N, E>) -> bool {
    connected_components(graph).len() <= 1
}

/// Result of the bridge/articulation analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CriticalElements {
    /// Edges whose removal disconnects their component.
    pub bridges: Vec<EdgeId>,
    /// Nodes whose removal disconnects their component.
    pub articulation_points: Vec<NodeId>,
}

/// Finds bridges and articulation points with an iterative Tarjan low-link
/// DFS (iterative so deep tree-like campus topologies cannot overflow the
/// call stack). Parallel edges between the same pair are handled: such a
/// pair never forms a bridge.
pub fn critical_elements<N, E>(graph: &Graph<N, E>) -> CriticalElements {
    let cap = graph.node_capacity();
    let mut disc = vec![0u32; cap];
    let mut low = vec![0u32; cap];
    let mut visited = vec![false; cap];
    let mut timer = 1u32;
    let mut bridges = Vec::new();
    let mut artics = vec![false; cap];

    // Explicit DFS frame: node, edge used to enter (None for roots),
    // adjacency snapshot, cursor, number of DFS children (for root rule).
    struct Frame {
        node: NodeId,
        entry_edge: Option<EdgeId>,
        adj: Vec<crate::graph::Adjacency>,
        cursor: usize,
        children: u32,
    }

    for root in graph.node_ids() {
        if visited[root.index()] {
            continue;
        }
        visited[root.index()] = true;
        disc[root.index()] = timer;
        low[root.index()] = timer;
        timer += 1;
        let mut stack = vec![Frame {
            node: root,
            entry_edge: None,
            adj: graph.neighbors(root).collect(),
            cursor: 0,
            children: 0,
        }];
        while let Some(frame) = stack.last_mut() {
            if frame.cursor < frame.adj.len() {
                let adj = frame.adj[frame.cursor];
                frame.cursor += 1;
                if Some(adj.edge) == frame.entry_edge {
                    continue; // don't traverse the entry edge backwards
                }
                if visited[adj.node.index()] {
                    // Back edge (or parallel edge to parent — treated as a
                    // back edge, which correctly prevents bridge marking).
                    let node_idx = frame.node.index();
                    low[node_idx] = low[node_idx].min(disc[adj.node.index()]);
                } else {
                    visited[adj.node.index()] = true;
                    disc[adj.node.index()] = timer;
                    low[adj.node.index()] = timer;
                    timer += 1;
                    frame.children += 1;
                    let child = adj.node;
                    stack.push(Frame {
                        node: child,
                        entry_edge: Some(adj.edge),
                        adj: graph.neighbors(child).collect(),
                        cursor: 0,
                        children: 0,
                    });
                }
            } else {
                // Finished `frame.node`: propagate low-link to parent.
                let finished = stack.pop().expect("frame exists");
                if let Some(parent_frame) = stack.last() {
                    let p = parent_frame.node.index();
                    let f = finished.node.index();
                    let parent_is_root = stack.len() == 1;
                    low[p] = low[p].min(low[f]);
                    if low[f] > disc[p] {
                        bridges.push(finished.entry_edge.expect("non-root has entry edge"));
                    }
                    if !parent_is_root && low[f] >= disc[p] {
                        artics[p] = true;
                    }
                } else if finished.children >= 2 {
                    artics[finished.node.index()] = true; // root rule
                }
            }
        }
    }

    let articulation_points = graph.node_ids().filter(|n| artics[n.index()]).collect();
    bridges.sort_unstable();
    CriticalElements {
        bridges,
        articulation_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn components_of_two_islands() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        g.add_edge(a, b, ());
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&vec![a, b]));
        assert!(comps.contains(&vec![c]));
        assert!(!is_connected(&g));
    }

    #[test]
    fn chain_is_all_bridges_and_inner_articulations() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let ids: Vec<_> = (0..4).map(|i| g.add_node(i)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        let crit = critical_elements(&g);
        assert_eq!(crit.bridges.len(), 3);
        assert_eq!(crit.articulation_points, vec![ids[1], ids[2]]);
    }

    #[test]
    fn cycle_has_no_critical_elements() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let ids: Vec<_> = (0..5).map(|i| g.add_node(i)).collect();
        for i in 0..5 {
            g.add_edge(ids[i], ids[(i + 1) % 5], ());
        }
        let crit = critical_elements(&g);
        assert!(crit.bridges.is_empty());
        assert!(crit.articulation_points.is_empty());
    }

    #[test]
    fn parallel_edges_are_never_bridges() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        g.add_edge(a, b, ());
        g.add_edge(a, b, ()); // redundant link
        g.add_edge(b, c, ());
        let crit = critical_elements(&g);
        assert_eq!(crit.bridges.len(), 1);
        assert_eq!(g.endpoints(crit.bridges[0]), Some((b, c)));
        assert_eq!(crit.articulation_points, vec![b]);
    }

    #[test]
    fn barbell_center_is_articulation() {
        // triangle - x - triangle
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let ids: Vec<_> = (0..7).map(|i| g.add_node(i)).collect();
        for (i, j) in [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)] {
            g.add_edge(ids[i], ids[j], ());
        }
        g.add_edge(ids[2], ids[3], ());
        g.add_edge(ids[3], ids[4], ());
        let crit = critical_elements(&g);
        assert_eq!(crit.bridges.len(), 2);
        assert_eq!(crit.articulation_points, vec![ids[2], ids[3], ids[4]]);
    }

    #[test]
    fn disconnected_graph_handles_multiple_roots() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        let d = g.add_node(3);
        g.add_edge(a, b, ());
        g.add_edge(c, d, ());
        let crit = critical_elements(&g);
        assert_eq!(crit.bridges.len(), 2);
        assert!(crit.articulation_points.is_empty());
    }
}
