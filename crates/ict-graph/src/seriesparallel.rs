//! Two-terminal series-parallel recognition and reduction.
//!
//! The companion transformation of the paper (\[20\], "Model-driven evaluation
//! of user-perceived service availability") turns a UPSIM into a reliability
//! block diagram. A two-terminal graph maps to a *pure* RBD exactly when it
//! is series-parallel reducible; this module performs the reduction and
//! returns the block structure as an [`SpTree`]. Non-SP graphs (e.g. the
//! bridge formed by the redundant USI core) are detected so callers can fall
//! back to exact BDD / sum-of-disjoint-products analysis.

use crate::graph::{EdgeId, Graph, NodeId};

/// A series-parallel decomposition over original edge ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpTree {
    /// A single original edge.
    Edge(EdgeId),
    /// Components in series (all must work).
    Series(Vec<SpTree>),
    /// Components in parallel (at least one must work).
    Parallel(Vec<SpTree>),
}

impl SpTree {
    /// Number of original edges referenced by this tree.
    pub fn edge_count(&self) -> usize {
        match self {
            SpTree::Edge(_) => 1,
            SpTree::Series(ts) | SpTree::Parallel(ts) => ts.iter().map(SpTree::edge_count).sum(),
        }
    }

    /// All original edges referenced by this tree.
    pub fn edges(&self) -> Vec<EdgeId> {
        let mut out = Vec::new();
        self.collect_edges(&mut out);
        out
    }

    fn collect_edges(&self, out: &mut Vec<EdgeId>) {
        match self {
            SpTree::Edge(e) => out.push(*e),
            SpTree::Series(ts) | SpTree::Parallel(ts) => {
                ts.iter().for_each(|t| t.collect_edges(out))
            }
        }
    }

    /// Flattens nested `Series(Series(..))` / `Parallel(Parallel(..))`.
    pub fn normalized(self) -> SpTree {
        match self {
            SpTree::Edge(e) => SpTree::Edge(e),
            SpTree::Series(ts) => {
                let mut flat = Vec::new();
                for t in ts {
                    match t.normalized() {
                        SpTree::Series(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    SpTree::Series(flat)
                }
            }
            SpTree::Parallel(ts) => {
                let mut flat = Vec::new();
                for t in ts {
                    match t.normalized() {
                        SpTree::Parallel(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    SpTree::Parallel(flat)
                }
            }
        }
    }
}

/// Outcome of [`reduce`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpReduction {
    /// The graph reduced to a single block between the terminals.
    SeriesParallel(SpTree),
    /// The graph is not two-terminal series-parallel (e.g. contains a
    /// bridge/Wheatstone structure); `remaining_nodes` is the size of the
    /// irreducible kernel, useful for diagnostics.
    Irreducible {
        /// Node count of the irreducible kernel.
        remaining_nodes: usize,
        /// Edge count of the irreducible kernel.
        remaining_edges: usize,
    },
    /// The terminals are not connected at all.
    Disconnected,
}

/// Attempts the series-parallel reduction of the subgraph between
/// `source` and `target`.
///
/// Reduction rules, applied to fixpoint on a scratch copy:
/// 1. **Prune**: drop non-terminal nodes of degree ≤ 1 (dead ends carry no
///    traffic between the terminals),
/// 2. **Parallel**: merge multi-edges between the same node pair,
/// 3. **Series**: splice out non-terminal degree-2 nodes.
///
/// Note the *node* itself disappears in a series splice; callers that model
/// node failures (as the dependability crate does) must expand nodes into
/// edges beforehand — see `dependability::transform`.
pub fn reduce<N, E>(graph: &Graph<N, E>, source: NodeId, target: NodeId) -> SpReduction {
    // Scratch multigraph carrying SpTrees on edges.
    let mut work: Graph<NodeId, SpTree> = Graph::new_undirected();
    let mut map = vec![None; graph.node_capacity()];
    for n in graph.node_ids() {
        map[n.index()] = Some(work.add_node(n));
    }
    let get = |map: &Vec<Option<NodeId>>, n: NodeId| map[n.index()].expect("mapped");
    for (e, s, t, _) in graph.edges() {
        if s == t {
            continue; // self loops are irrelevant for two-terminal analysis
        }
        work.add_edge(get(&map, s), get(&map, t), SpTree::Edge(e));
    }
    let s = get(&map, source);
    let t = get(&map, target);
    if s == t {
        return SpReduction::Disconnected; // degenerate; callers special-case
    }

    loop {
        let mut changed = false;

        // 1. prune dead ends
        let dead: Vec<NodeId> = work
            .node_ids()
            .filter(|&n| n != s && n != t && work.degree(n) <= 1)
            .collect();
        for n in dead {
            work.remove_node(n);
            changed = true;
        }

        // 2. parallel merge: find a pair with >= 2 edges
        let mut parallel_pair: Option<(NodeId, NodeId)> = None;
        'scan: for n in work.node_ids() {
            let mut seen: Vec<NodeId> = Vec::new();
            for adj in work.neighbors(n) {
                if seen.contains(&adj.node) {
                    parallel_pair = Some((n, adj.node));
                    break 'scan;
                }
                seen.push(adj.node);
            }
        }
        if let Some((a, b)) = parallel_pair {
            let edge_ids = work.edges_between(a, b);
            let mut branches = Vec::new();
            for e in edge_ids {
                branches.push(work.remove_edge(e).expect("live edge"));
            }
            work.add_edge(a, b, SpTree::Parallel(branches).normalized());
            changed = true;
        }

        // 3. series splice: a non-terminal degree-2 node with two distinct
        //    incident edges
        let splice = work
            .node_ids()
            .find(|&n| n != s && n != t && work.degree(n) == 2);
        if let Some(n) = splice {
            let adjs: Vec<_> = work.neighbors(n).collect();
            debug_assert_eq!(adjs.len(), 2);
            let (a1, a2) = (adjs[0], adjs[1]);
            let t1 = work.remove_edge(a1.edge).expect("live edge");
            let t2 = work.remove_edge(a2.edge).expect("live edge");
            work.remove_node(n);
            work.add_edge(a1.node, a2.node, SpTree::Series(vec![t1, t2]).normalized());
            changed = true;
        }

        if !changed {
            break;
        }
    }

    let nodes = work.node_count();
    let edges = work.edge_count();
    if edges == 0 {
        return SpReduction::Disconnected;
    }
    if nodes == 2 && edges == 1 {
        let e = work.edge_ids().next().expect("one edge");
        let (a, b) = work.endpoints(e).expect("live");
        if (a == s && b == t) || (a == t && b == s) {
            return SpReduction::SeriesParallel(work.edge(e).expect("live").clone());
        }
    }
    if !crate::traversal::is_reachable(&work, s, t) {
        return SpReduction::Disconnected;
    }
    SpReduction::Irreducible {
        remaining_nodes: nodes,
        remaining_edges: edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn chain_reduces_to_series() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let ids: Vec<_> = (0..4).map(|i| g.add_node(i)).collect();
        let mut es = Vec::new();
        for w in ids.windows(2) {
            es.push(g.add_edge(w[0], w[1], ()));
        }
        match reduce(&g, ids[0], ids[3]) {
            SpReduction::SeriesParallel(tree) => {
                assert_eq!(tree.edge_count(), 3);
                let mut edges = tree.edges();
                edges.sort_unstable();
                assert_eq!(edges, es);
                assert!(matches!(tree, SpTree::Series(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parallel_edges_reduce_to_parallel() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let s = g.add_node(0);
        let t = g.add_node(1);
        g.add_edge(s, t, ());
        g.add_edge(s, t, ());
        match reduce(&g, s, t) {
            SpReduction::SeriesParallel(SpTree::Parallel(branches)) => {
                assert_eq!(branches.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn diamond_reduces_to_parallel_of_series() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let s = g.add_node(0);
        let a = g.add_node(1);
        let b = g.add_node(2);
        let t = g.add_node(3);
        g.add_edge(s, a, ());
        g.add_edge(a, t, ());
        g.add_edge(s, b, ());
        g.add_edge(b, t, ());
        match reduce(&g, s, t) {
            SpReduction::SeriesParallel(SpTree::Parallel(branches)) => {
                assert_eq!(branches.len(), 2);
                assert!(branches
                    .iter()
                    .all(|b| matches!(b, SpTree::Series(inner) if inner.len() == 2)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wheatstone_bridge_is_irreducible() {
        // s-a, s-b, a-b (the bridge), a-t, b-t
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let s = g.add_node(0);
        let a = g.add_node(1);
        let b = g.add_node(2);
        let t = g.add_node(3);
        g.add_edge(s, a, ());
        g.add_edge(s, b, ());
        g.add_edge(a, b, ());
        g.add_edge(a, t, ());
        g.add_edge(b, t, ());
        assert!(matches!(reduce(&g, s, t), SpReduction::Irreducible { .. }));
    }

    #[test]
    fn dead_ends_are_pruned() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let s = g.add_node(0);
        let t = g.add_node(1);
        let stub = g.add_node(2);
        g.add_edge(s, t, ());
        g.add_edge(s, stub, ());
        match reduce(&g, s, t) {
            SpReduction::SeriesParallel(tree) => assert_eq!(tree.edge_count(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disconnected_terminals_detected() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let s = g.add_node(0);
        let t = g.add_node(1);
        let u = g.add_node(2);
        g.add_edge(t, u, ());
        assert_eq!(reduce(&g, s, t), SpReduction::Disconnected);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let s = g.add_node(0);
        let t = g.add_node(1);
        g.add_edge(s, s, ());
        g.add_edge(s, t, ());
        assert!(matches!(
            reduce(&g, s, t),
            SpReduction::SeriesParallel(SpTree::Edge(_))
        ));
    }

    #[test]
    fn normalization_flattens_nesting() {
        let e = |i| SpTree::Edge(EdgeId::from_index(i));
        let nested = SpTree::Series(vec![
            SpTree::Series(vec![e(0), e(1)]),
            e(2),
            SpTree::Series(vec![e(3)]),
        ]);
        match nested.normalized() {
            SpTree::Series(flat) => assert_eq!(flat.len(), 4),
            other => panic!("{other:?}"),
        }
    }
}
