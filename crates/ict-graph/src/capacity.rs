//! Bottleneck-capacity (widest-path) analysis.
//!
//! The paper's network profile attaches a `throughput` attribute to every
//! communication link (Fig. 7) and names performability among the
//! user-perceived properties the UPSIM enables (Sec. VII). The classic
//! graph question behind that is the **widest path**: the route maximizing
//! the minimum link capacity, and the **maximum bottleneck capacity**
//! between requester and provider.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::paths::Path;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct HeapItem {
    width: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on width; ties broken on node id for determinism.
        self.width
            .partial_cmp(&other.width)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Finds the widest path from `source` to `target` under a non-negative
/// edge capacity function: the path maximizing the minimum edge capacity.
/// Returns the path and its bottleneck capacity, or `None` if unreachable.
///
/// Dijkstra-variant with max-min relaxation; `O((n + m) log n)`.
pub fn widest_path<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    capacity: impl Fn(EdgeId) -> f64,
) -> Option<(Path, f64)> {
    if !graph.contains_node(source) || !graph.contains_node(target) {
        return None;
    }
    if source == target {
        return Some((
            Path {
                nodes: vec![source],
                edges: vec![],
            },
            f64::INFINITY,
        ));
    }
    let cap = graph.node_capacity();
    let mut best = vec![0.0f64; cap];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; cap];
    let mut settled = vec![false; cap];
    let mut heap = BinaryHeap::new();
    best[source.index()] = f64::INFINITY;
    heap.push(HeapItem {
        width: f64::INFINITY,
        node: source,
    });

    while let Some(HeapItem { width, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        if node == target {
            break;
        }
        for adj in graph.neighbors(node) {
            if settled[adj.node.index()] {
                continue;
            }
            let c = capacity(adj.edge);
            debug_assert!(c >= 0.0, "capacities must be non-negative");
            let through = width.min(c);
            if through > best[adj.node.index()] {
                best[adj.node.index()] = through;
                prev[adj.node.index()] = Some((node, adj.edge));
                heap.push(HeapItem {
                    width: through,
                    node: adj.node,
                });
            }
        }
    }

    if best[target.index()] <= 0.0 {
        return None;
    }
    let mut nodes = vec![target];
    let mut edges = Vec::new();
    let mut cur = target;
    while cur != source {
        let (p, e) = prev[cur.index()].expect("predecessor chain complete");
        nodes.push(p);
        edges.push(e);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    Some((Path { nodes, edges }, best[target.index()]))
}

/// The **max-flow** capacity between two terminals under real-valued edge
/// capacities — the aggregate throughput the infrastructure could carry if
/// traffic may split across routes. Edmonds–Karp on the undirected/directed
/// residual network.
pub fn max_flow_capacity<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    capacity: impl Fn(EdgeId) -> f64,
) -> f64 {
    if source == target || !graph.contains_node(source) || !graph.contains_node(target) {
        return 0.0;
    }
    let ecap = graph.edge_capacity();
    let mut residual = vec![[0.0f64; 2]; ecap];
    for (e, _, _, _) in graph.edges() {
        let c = capacity(e);
        residual[e.index()][0] = c;
        residual[e.index()][1] = if graph.is_directed() { 0.0 } else { c };
    }
    let mut flow = 0.0;
    loop {
        // BFS for any augmenting path.
        let mut prev: Vec<Option<(NodeId, EdgeId, usize)>> = vec![None; graph.node_capacity()];
        let mut visited = vec![false; graph.node_capacity()];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source);
        visited[source.index()] = true;
        'bfs: while let Some(n) = queue.pop_front() {
            for (e, s, t, _) in graph.edges() {
                let (next, dir) = if s == n {
                    (t, 0usize)
                } else if t == n {
                    (s, 1usize)
                } else {
                    continue;
                };
                if visited[next.index()] || residual[e.index()][dir] <= 1e-12 {
                    continue;
                }
                visited[next.index()] = true;
                prev[next.index()] = Some((n, e, dir));
                if next == target {
                    break 'bfs;
                }
                queue.push_back(next);
            }
        }
        if !visited[target.index()] {
            return flow;
        }
        // Bottleneck along the path.
        let mut bottleneck = f64::INFINITY;
        let mut cur = target;
        while cur != source {
            let (p, e, dir) = prev[cur.index()].expect("path recorded");
            bottleneck = bottleneck.min(residual[e.index()][dir]);
            cur = p;
        }
        let mut cur = target;
        while cur != source {
            let (p, e, dir) = prev[cur.index()].expect("path recorded");
            residual[e.index()][dir] -= bottleneck;
            residual[e.index()][1 - dir] += bottleneck;
            cur = p;
        }
        flow += bottleneck;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// s -(10)- a -(1)- t   and   s -(3)- b -(3)- t
    fn net() -> (Graph<&'static str, f64>, [NodeId; 4]) {
        let mut g = Graph::new_undirected();
        let s = g.add_node("s");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let t = g.add_node("t");
        g.add_edge(s, a, 10.0);
        g.add_edge(a, t, 1.0);
        g.add_edge(s, b, 3.0);
        g.add_edge(b, t, 3.0);
        (g, [s, a, b, t])
    }

    #[test]
    fn widest_path_prefers_bottleneck_over_hops() {
        let (g, [s, _, b, t]) = net();
        let cap = |e: EdgeId| *g.edge(e).unwrap();
        let (path, width) = widest_path(&g, s, t, cap).unwrap();
        assert_eq!(path.nodes, vec![s, b, t], "3-wide route beats 1-wide route");
        assert!((width - 3.0).abs() < 1e-12);
        assert!(path.validate(&g));
    }

    #[test]
    fn widest_path_trivial_and_unreachable() {
        let (g, [s, ..]) = net();
        let (p, w) = widest_path(&g, s, s, |_| 1.0).unwrap();
        assert!(p.is_empty());
        assert!(w.is_infinite());

        let mut g2: Graph<(), f64> = Graph::new_undirected();
        let x = g2.add_node(());
        let y = g2.add_node(());
        assert!(widest_path(&g2, x, y, |_| 1.0).is_none());
    }

    #[test]
    fn zero_capacity_edges_block() {
        let mut g: Graph<(), f64> = Graph::new_undirected();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, 0.0);
        assert!(widest_path(&g, s, t, |e| *g.edge(e).unwrap()).is_none());
    }

    #[test]
    fn max_flow_sums_disjoint_routes() {
        let (g, [s, _, _, t]) = net();
        let cap = |e: EdgeId| *g.edge(e).unwrap();
        // route via a carries min(10,1)=1, via b carries 3 → total 4.
        let flow = max_flow_capacity(&g, s, t, cap);
        assert!((flow - 4.0).abs() < 1e-9);
    }

    #[test]
    fn max_flow_chain_is_bottleneck() {
        let mut g: Graph<(), f64> = Graph::new_undirected();
        let ids: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], 7.0);
        g.add_edge(ids[1], ids[2], 2.0);
        let flow = max_flow_capacity(&g, ids[0], ids[2], |e| *g.edge(e).unwrap());
        assert!((flow - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_flow_at_least_widest_path() {
        let (g, [s, _, _, t]) = net();
        let cap = |e: EdgeId| *g.edge(e).unwrap();
        let (_, width) = widest_path(&g, s, t, cap).unwrap();
        let flow = max_flow_capacity(&g, s, t, cap);
        assert!(flow >= width - 1e-12);
    }
}
