//! Graphviz DOT export — the UPSIM visualization side goal of the paper
//! ("a practical way to automatically identify and visualize
//! dependability-relevant ICT components", Sec. VIII).

use crate::graph::{EdgeId, Graph, NodeId};

/// Renders the graph in DOT format.
///
/// `node_label` and `edge_label` produce the display labels; empty edge
/// labels are omitted.
pub fn to_dot<N, E>(
    graph: &Graph<N, E>,
    name: &str,
    node_label: impl Fn(NodeId, &N) -> String,
    edge_label: impl Fn(EdgeId, &E) -> String,
) -> String {
    let (keyword, arrow) = if graph.is_directed() {
        ("digraph", "->")
    } else {
        ("graph", "--")
    };
    let mut out = String::new();
    out.push_str(&format!("{keyword} \"{}\" {{\n", sanitize(name)));
    out.push_str("  node [shape=box, fontsize=10];\n");
    for (id, w) in graph.nodes() {
        out.push_str(&format!(
            "  n{} [label=\"{}\"];\n",
            id.index(),
            sanitize(&node_label(id, w))
        ));
    }
    for (id, s, t, w) in graph.edges() {
        let label = edge_label(id, w);
        if label.is_empty() {
            out.push_str(&format!("  n{} {arrow} n{};\n", s.index(), t.index()));
        } else {
            out.push_str(&format!(
                "  n{} {arrow} n{} [label=\"{}\"];\n",
                s.index(),
                t.index(),
                sanitize(&label)
            ));
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn undirected_dot_shape() {
        let mut g: Graph<&str, f64> = Graph::new_undirected();
        let a = g.add_node("t1:Comp");
        let b = g.add_node("e1:HP2650");
        g.add_edge(a, b, 1000.0);
        let dot = to_dot(&g, "usi", |_, w| w.to_string(), |_, w| format!("{w}"));
        assert!(dot.starts_with("graph \"usi\""));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("t1:Comp"));
        assert!(dot.contains("label=\"1000\""));
    }

    #[test]
    fn directed_dot_uses_arrows() {
        let mut g: Graph<&str, ()> = Graph::new_directed();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, ());
        let dot = to_dot(&g, "flow", |_, w| w.to_string(), |_, _| String::new());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 -> n1;"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut g: Graph<&str, ()> = Graph::new_undirected();
        g.add_node("say \"hi\"\nthere");
        let dot = to_dot(&g, "q\"x", |_, w| w.to_string(), |_, _| String::new());
        assert!(dot.contains("say \\\"hi\\\"\\nthere"));
        assert!(dot.contains("q\\\"x"));
    }
}
