//! Minimal cut sets and max-flow min-cut for two-terminal analysis.
//!
//! A *minimal cut set* is a minimal set of intermediate components whose
//! joint failure disconnects requester from provider — the dual of the
//! paper's path sets, and the core input for fault-tree construction
//! (paper Sec. VII).

use crate::graph::{EdgeId, Graph, NodeId};
use crate::paths::minimal_path_sets;
use std::collections::VecDeque;

/// Caps for the (worst-case exponential) cut-set enumeration.
#[derive(Debug, Clone, Copy)]
pub struct CutLimits {
    /// Maximum cardinality of reported cut sets.
    pub max_size: usize,
    /// Maximum number of cut sets to report.
    pub max_cuts: usize,
}

impl Default for CutLimits {
    fn default() -> Self {
        CutLimits {
            max_size: 8,
            max_cuts: 10_000,
        }
    }
}

/// Enumerates minimal **node** cut sets between `source` and `target`,
/// excluding the terminals themselves (a requester/provider failure is a
/// trivial cut and is handled separately by the availability model).
///
/// Implementation: minimal transversals (hitting sets) of the minimal path
/// sets, computed incrementally (Berge's algorithm) with minimization after
/// every step. Sets exceeding `limits.max_size` are pruned.
pub fn minimal_node_cut_sets<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    limits: CutLimits,
) -> Vec<Vec<NodeId>> {
    let path_sets: Vec<Vec<NodeId>> = minimal_path_sets(graph, source, target)
        .into_iter()
        .map(|set| {
            set.into_iter()
                .filter(|&n| n != source && n != target)
                .collect::<Vec<_>>()
        })
        .collect();
    if path_sets.is_empty() {
        return Vec::new(); // already disconnected: no cut needed
    }
    if path_sets.iter().any(Vec::is_empty) {
        // A direct source—target link exists: no intermediate node cut can
        // sever the pair.
        return Vec::new();
    }

    // Berge: transversals of the first set are its singletons.
    let mut transversals: Vec<Vec<NodeId>> = path_sets[0].iter().map(|&n| vec![n]).collect();
    for set in &path_sets[1..] {
        let mut next: Vec<Vec<NodeId>> = Vec::new();
        for t in &transversals {
            if t.iter().any(|n| set.contains(n)) {
                next.push(t.clone());
            } else {
                for &n in set {
                    let mut extended = t.clone();
                    extended.push(n);
                    extended.sort_unstable();
                    extended.dedup();
                    if extended.len() <= limits.max_size {
                        next.push(extended);
                    }
                }
            }
        }
        next.sort();
        next.dedup();
        transversals = minimize(next);
        if transversals.len() > limits.max_cuts {
            transversals.truncate(limits.max_cuts);
        }
    }
    transversals.sort_by_key(|t| (t.len(), t.clone()));
    transversals
}

/// Removes non-minimal (superset) sets. Input must be sorted sets.
fn minimize(mut sets: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    sets.sort_by_key(Vec::len);
    let mut out: Vec<Vec<NodeId>> = Vec::new();
    'outer: for cand in sets {
        for kept in &out {
            if kept.iter().all(|n| cand.binary_search(n).is_ok()) {
                continue 'outer;
            }
        }
        out.push(cand);
    }
    out
}

/// Size of the minimum **edge** cut between `source` and `target`
/// (unit capacities, Edmonds–Karp), together with one witness cut.
///
/// For an undirected graph each edge is usable in both directions.
pub fn min_edge_cut<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
) -> (usize, Vec<EdgeId>) {
    if source == target {
        return (0, Vec::new());
    }
    // Residual capacities per (edge, direction): dir 0 = source->target
    // orientation as stored, dir 1 = reverse.
    let ecap = graph.edge_capacity();
    let mut cap = vec![[0i32; 2]; ecap];
    for (e, _, _, _) in graph.edges() {
        cap[e.index()][0] = 1;
        cap[e.index()][1] = if graph.is_directed() { 0 } else { 1 };
    }
    let mut flow = 0usize;
    loop {
        // BFS for an augmenting path in the residual graph.
        let mut prev: Vec<Option<(NodeId, EdgeId, usize)>> = vec![None; graph.node_capacity()];
        let mut visited = vec![false; graph.node_capacity()];
        let mut queue = VecDeque::new();
        queue.push_back(source);
        visited[source.index()] = true;
        'bfs: while let Some(n) = queue.pop_front() {
            for (e, s, t, _) in graph.edges() {
                let (next, dir) = if s == n {
                    (t, 0usize)
                } else if t == n {
                    (s, 1usize)
                } else {
                    continue;
                };
                if visited[next.index()] || cap[e.index()][dir] <= 0 {
                    continue;
                }
                visited[next.index()] = true;
                prev[next.index()] = Some((n, e, dir));
                if next == target {
                    break 'bfs;
                }
                queue.push_back(next);
            }
        }
        if !visited[target.index()] {
            // No augmenting path: cut = saturated edges crossing the
            // reachable frontier.
            let mut cut = Vec::new();
            for (e, s, t, _) in graph.edges() {
                let s_in = visited[s.index()];
                let t_in = visited[t.index()];
                if s_in != t_in {
                    cut.push(e);
                }
            }
            cut.sort_unstable();
            cut.dedup();
            return (flow, cut);
        }
        // Augment by 1 along the path.
        let mut cur = target;
        while cur != source {
            let (p, e, dir) = prev[cur.index()].expect("path recorded");
            cap[e.index()][dir] -= 1;
            cap[e.index()][1 - dir] += 1;
            cur = p;
        }
        flow += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// s - a - t  and  s - b - t (two disjoint routes).
    fn two_routes() -> (Graph<&'static str, ()>, [NodeId; 4]) {
        let mut g = Graph::new_undirected();
        let s = g.add_node("s");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let t = g.add_node("t");
        g.add_edge(s, a, ());
        g.add_edge(a, t, ());
        g.add_edge(s, b, ());
        g.add_edge(b, t, ());
        (g, [s, a, b, t])
    }

    #[test]
    fn disjoint_routes_cut_requires_both() {
        let (g, [s, a, b, t]) = two_routes();
        let cuts = minimal_node_cut_sets(&g, s, t, CutLimits::default());
        assert_eq!(cuts, vec![vec![a.min(b), a.max(b)]]);
    }

    #[test]
    fn chain_every_inner_node_is_singleton_cut() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let ids: Vec<_> = (0..4).map(|i| g.add_node(i)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        let cuts = minimal_node_cut_sets(&g, ids[0], ids[3], CutLimits::default());
        assert_eq!(cuts.len(), 2);
        assert!(cuts.contains(&vec![ids[1]]));
        assert!(cuts.contains(&vec![ids[2]]));
    }

    #[test]
    fn direct_link_means_no_node_cut() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let s = g.add_node(0);
        let t = g.add_node(1);
        let m = g.add_node(2);
        g.add_edge(s, t, ());
        g.add_edge(s, m, ());
        g.add_edge(m, t, ());
        assert!(minimal_node_cut_sets(&g, s, t, CutLimits::default()).is_empty());
    }

    #[test]
    fn disconnected_pair_has_no_cuts() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let s = g.add_node(0);
        let t = g.add_node(1);
        assert!(minimal_node_cut_sets(&g, s, t, CutLimits::default()).is_empty());
    }

    #[test]
    fn min_edge_cut_on_disjoint_routes_is_two() {
        let (g, [s, _, _, t]) = two_routes();
        let (value, cut) = min_edge_cut(&g, s, t);
        assert_eq!(value, 2);
        assert_eq!(cut.len(), 2);
    }

    #[test]
    fn min_edge_cut_on_chain_is_one() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let ids: Vec<_> = (0..3).map(|i| g.add_node(i)).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[2], ());
        let (value, cut) = min_edge_cut(&g, ids[0], ids[2]);
        assert_eq!(value, 1);
        assert_eq!(cut.len(), 1);
    }

    #[test]
    fn min_edge_cut_counts_parallel_edges() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let s = g.add_node(0);
        let t = g.add_node(1);
        g.add_edge(s, t, ());
        g.add_edge(s, t, ());
        let (value, _) = min_edge_cut(&g, s, t);
        assert_eq!(value, 2);
    }

    #[test]
    fn min_edge_cut_disconnected_is_zero() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let s = g.add_node(0);
        let t = g.add_node(1);
        let (value, cut) = min_edge_cut(&g, s, t);
        assert_eq!(value, 0);
        assert!(cut.is_empty());
    }

    #[test]
    fn directed_min_cut_respects_orientation() {
        let mut g: Graph<u32, ()> = Graph::new_directed();
        let s = g.add_node(0);
        let m = g.add_node(1);
        let t = g.add_node(2);
        g.add_edge(s, m, ());
        g.add_edge(m, t, ());
        g.add_edge(t, s, ()); // reverse edge cannot carry forward flow
        let (value, _) = min_edge_cut(&g, s, t);
        assert_eq!(value, 1);
    }
}
