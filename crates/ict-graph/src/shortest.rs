//! Shortest paths: unweighted BFS, Dijkstra, and Yen's k-shortest.
//!
//! The paper's methodology enumerates *all* simple paths; operators of very
//! large infrastructures often want the k most plausible routes instead.
//! Yen's algorithm provides that as a bounded alternative and is used in the
//! scaling experiments (E9) as the "practical" comparison point.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::paths::Path;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Shortest path by hop count (BFS). Returns `None` if unreachable.
pub fn bfs_shortest_path<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
) -> Option<Path> {
    dijkstra_filtered(graph, source, target, |_| 1.0, |_| true, |_| true).map(|(p, _)| p)
}

/// Dijkstra shortest path under a non-negative edge cost function.
pub fn dijkstra<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    cost: impl Fn(EdgeId) -> f64,
) -> Option<(Path, f64)> {
    dijkstra_filtered(graph, source, target, cost, |_| true, |_| true)
}

#[derive(PartialEq)]
struct HeapItem {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; ties broken on node id for determinism.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra with node and edge admission filters (the machinery Yen needs).
pub fn dijkstra_filtered<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    cost: impl Fn(EdgeId) -> f64,
    node_ok: impl Fn(NodeId) -> bool,
    edge_ok: impl Fn(EdgeId) -> bool,
) -> Option<(Path, f64)> {
    if !graph.contains_node(source) || !graph.contains_node(target) {
        return None;
    }
    if !node_ok(source) || !node_ok(target) {
        return None;
    }
    let cap = graph.node_capacity();
    let mut dist = vec![f64::INFINITY; cap];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; cap];
    let mut settled = vec![false; cap];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapItem {
        cost: 0.0,
        node: source,
    });

    while let Some(HeapItem { cost: d, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        if node == target {
            break;
        }
        for adj in graph.neighbors(node) {
            if !edge_ok(adj.edge) || !node_ok(adj.node) || settled[adj.node.index()] {
                continue;
            }
            let c = cost(adj.edge);
            debug_assert!(c >= 0.0, "Dijkstra requires non-negative costs");
            let nd = d + c;
            if nd < dist[adj.node.index()] {
                dist[adj.node.index()] = nd;
                prev[adj.node.index()] = Some((node, adj.edge));
                heap.push(HeapItem {
                    cost: nd,
                    node: adj.node,
                });
            }
        }
    }

    if !dist[target.index()].is_finite() {
        return None;
    }
    let mut nodes = vec![target];
    let mut edges = Vec::new();
    let mut cur = target;
    while cur != source {
        let (p, e) = prev[cur.index()].expect("predecessor chain is complete");
        nodes.push(p);
        edges.push(e);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    Some((Path { nodes, edges }, dist[target.index()]))
}

/// Yen's algorithm: the `k` shortest loopless paths by total cost.
///
/// Returns at most `k` paths, sorted by ascending cost; fewer when the graph
/// does not contain `k` simple paths.
pub fn yen_k_shortest<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    cost: impl Fn(EdgeId) -> f64 + Copy,
) -> Vec<(Path, f64)> {
    let mut result: Vec<(Path, f64)> = Vec::new();
    let Some(first) = dijkstra(graph, source, target, cost) else {
        return result;
    };
    result.push(first);
    // Candidate set; kept sorted on extraction.
    let mut candidates: Vec<(Path, f64)> = Vec::new();

    while result.len() < k {
        let (last_path, _) = result.last().expect("at least one accepted path").clone();
        for i in 0..last_path.nodes.len() - 1 {
            let spur_node = last_path.nodes[i];
            let root_nodes = &last_path.nodes[..=i];
            let root_edges = &last_path.edges[..i];
            let root_cost: f64 = root_edges.iter().map(|&e| cost(e)).sum();

            // Edges leaving the spur node along any accepted path sharing
            // this root are banned.
            let mut banned_edges: Vec<EdgeId> = Vec::new();
            for (p, _) in result.iter().chain(candidates.iter()) {
                if p.nodes.len() > i && p.nodes[..=i] == *root_nodes {
                    if let Some(&e) = p.edges.get(i) {
                        banned_edges.push(e);
                    }
                }
            }
            // Root nodes (except spur) are banned to keep paths loopless.
            let banned_nodes: Vec<NodeId> = root_nodes[..i].to_vec();

            let spur = dijkstra_filtered(
                graph,
                spur_node,
                target,
                cost,
                |n| !banned_nodes.contains(&n),
                |e| !banned_edges.contains(&e),
            );
            if let Some((spur_path, spur_cost)) = spur {
                let mut nodes = root_nodes.to_vec();
                nodes.extend_from_slice(&spur_path.nodes[1..]);
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur_path.edges);
                let total = Path { nodes, edges };
                let total_cost = root_cost + spur_cost;
                if !result.iter().any(|(p, _)| *p == total)
                    && !candidates.iter().any(|(p, _)| *p == total)
                {
                    candidates.push((total, total_cost));
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Extract the cheapest candidate (deterministic tie-break on path).
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, (pa, ca)), (_, (pb, cb))| {
                ca.partial_cmp(cb)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| pa.cmp(pb))
            })
            .map(|(i, _)| i)
            .expect("candidates non-empty");
        result.push(candidates.swap_remove(best));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// s -1- a -1- t   and   s -5- t  and  s -1- b -1- a
    fn weighted() -> (Graph<&'static str, f64>, [NodeId; 4]) {
        let mut g = Graph::new_undirected();
        let s = g.add_node("s");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let t = g.add_node("t");
        g.add_edge(s, a, 1.0);
        g.add_edge(a, t, 1.0);
        g.add_edge(s, t, 5.0);
        g.add_edge(s, b, 1.0);
        g.add_edge(b, a, 1.0);
        (g, [s, a, b, t])
    }

    fn cost_of<'a>(g: &'a Graph<&'static str, f64>) -> impl Fn(EdgeId) -> f64 + Copy + 'a {
        move |e| *g.edge(e).unwrap()
    }

    #[test]
    fn bfs_finds_fewest_hops() {
        let (g, [s, _, _, t]) = weighted();
        let p = bfs_shortest_path(&g, s, t).unwrap();
        assert_eq!(p.len(), 1); // direct edge despite weight
    }

    #[test]
    fn dijkstra_finds_cheapest() {
        let (g, [s, a, _, t]) = weighted();
        let (p, c) = dijkstra(&g, s, t, cost_of(&g)).unwrap();
        assert_eq!(p.nodes, vec![s, a, t]);
        assert!((c - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let mut g: Graph<(), f64> = Graph::new_undirected();
        let a = g.add_node(());
        let b = g.add_node(());
        assert!(dijkstra(&g, a, b, |_| 1.0).is_none());
    }

    #[test]
    fn yen_returns_paths_in_cost_order() {
        let (g, [s, _, _, t]) = weighted();
        let ks = yen_k_shortest(&g, s, t, 10, cost_of(&g));
        // Simple paths s->t: s-a-t (2), s-b-a-t (3), s-t (5)
        assert_eq!(ks.len(), 3);
        let costs: Vec<f64> = ks.iter().map(|(_, c)| *c).collect();
        assert_eq!(costs, vec![2.0, 3.0, 5.0]);
        for (p, _) in &ks {
            assert!(p.validate(&g));
        }
    }

    #[test]
    fn yen_k_smaller_than_path_count() {
        let (g, [s, _, _, t]) = weighted();
        let ks = yen_k_shortest(&g, s, t, 2, cost_of(&g));
        assert_eq!(ks.len(), 2);
    }

    #[test]
    fn yen_on_single_path_graph() {
        let mut g: Graph<(), f64> = Graph::new_undirected();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        let ks = yen_k_shortest(&g, a, b, 5, |_| 1.0);
        assert_eq!(ks.len(), 1);
    }
}
