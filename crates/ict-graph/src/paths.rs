//! All-simple-paths discovery — the paper's path discovery algorithm.
//!
//! Paper Sec. V-D: *"We chose to implement a depth-first search (DFS)
//! algorithm with a path tracking mechanism to avoid live-locks within
//! cycles."* This module implements exactly that as a lazy iterator: the
//! current path is tracked in an on-path bitset, so cycles are never
//! re-entered, and every maximal extension reaching the target is emitted.
//!
//! The enumeration is **edge-distinct**: two parallel edges between the same
//! device pair yield two distinct paths (they are distinct physical routes
//! with independent failure behaviour, which matters for the downstream
//! reliability analysis).

use crate::graph::{Adjacency, EdgeId, Graph, NodeId};

/// A simple path: `nodes.len() == edges.len() + 1`, no repeated nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    /// Visited nodes from source to target, inclusive.
    pub nodes: Vec<NodeId>,
    /// Traversed edges, `edges[i]` connecting `nodes[i]` and `nodes[i+1]`.
    pub edges: Vec<EdgeId>,
}

impl Path {
    /// Number of edges (hops).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` for the trivial single-node path (source == target).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("path has at least one node")
    }

    /// The target node.
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("path has at least one node")
    }

    /// Checks the structural invariants against a graph: endpoints match,
    /// every edge connects consecutive nodes, no node repeats.
    pub fn validate<N, E>(&self, graph: &Graph<N, E>) -> bool {
        if self.nodes.is_empty() || self.nodes.len() != self.edges.len() + 1 {
            return false;
        }
        let mut seen = std::collections::HashSet::new();
        if !self.nodes.iter().all(|n| seen.insert(*n)) {
            return false;
        }
        self.edges.iter().enumerate().all(|(i, &e)| {
            graph.endpoints(e).is_some_and(|(s, t)| {
                (s == self.nodes[i] && t == self.nodes[i + 1])
                    || (!graph.is_directed() && t == self.nodes[i] && s == self.nodes[i + 1])
            })
        })
    }
}

/// Caps on the enumeration, to keep worst-case `O(n!)` searches bounded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathLimits {
    /// Maximum number of nodes per emitted path (`None` = unlimited).
    pub max_nodes: Option<usize>,
    /// Maximum number of paths to emit (`None` = unlimited).
    pub max_paths: Option<usize>,
}

impl PathLimits {
    /// No limits — the paper's semantics ("all redundant paths included").
    pub fn unlimited() -> Self {
        PathLimits::default()
    }

    /// Caps the number of nodes per path.
    pub fn with_max_nodes(mut self, n: usize) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Caps the number of emitted paths.
    pub fn with_max_paths(mut self, n: usize) -> Self {
        self.max_paths = Some(n);
        self
    }
}

struct Frame {
    neighbors: Vec<Adjacency>,
    cursor: usize,
}

/// Reusable DFS state for [`for_each_simple_path`]: the on-path bitset, the
/// per-depth cursor stack, and the current path buffers.
///
/// One instance serves any number of enumerations over any number of graphs
/// (buffers are re-sized per call), so a warm sweep over many
/// `(source, target)` pairs performs **zero** heap allocations once the
/// buffers have reached their high-water mark.
#[derive(Debug, Default)]
pub struct DiscoveryScratch {
    on_path: Vec<bool>,
    cursors: Vec<usize>,
    path_nodes: Vec<NodeId>,
    path_edges: Vec<EdgeId>,
}

impl DiscoveryScratch {
    /// A fresh, empty scratch (equivalent to `Default::default()`).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Work/output counters returned by [`for_each_simple_path`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumerationStats {
    /// DFS descents pushed onto the stack — a proxy for search work that is
    /// independent of how long each visit takes.
    pub frames: usize,
    /// Paths handed to the visitor.
    pub emitted: usize,
}

/// Visits every simple path from `source` to `target` without materializing
/// it: the visitor receives borrowed node/edge slices valid only for the
/// duration of the call. Enumeration order and limit semantics are identical
/// to [`simple_paths`].
///
/// `mask`, when present, restricts the search to nodes whose index maps to
/// `true` — exactly as if every other node had been removed from the graph.
/// [`crate::prune::BlockCutTree::relevant_nodes`] produces a mask that
/// provably preserves the full path multiset while collapsing the DFS
/// frontier to the source/target's block-cut-tree path.
///
/// Unlike the iterator, this walks adjacency by cursor into
/// [`Graph::adjacency_slice`] (no per-visited-node `Vec` collection) and
/// reuses all bookkeeping buffers from `scratch`.
pub fn for_each_simple_path<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    limits: PathLimits,
    mask: Option<&[bool]>,
    scratch: &mut DiscoveryScratch,
    mut emit: impl FnMut(&[NodeId], &[EdgeId]),
) -> EnumerationStats {
    let mut stats = EnumerationStats::default();
    let allowed = |n: NodeId| mask.is_none_or(|m| m.get(n.index()).copied().unwrap_or(false));
    if !graph.contains_node(source)
        || !graph.contains_node(target)
        || !allowed(source)
        || !allowed(target)
    {
        return stats;
    }
    let cap = limits.max_paths.unwrap_or(usize::MAX);
    if cap == 0 {
        return stats;
    }
    if source == target {
        emit(&[source], &[]);
        stats.emitted = 1;
        return stats;
    }
    scratch.on_path.clear();
    scratch.on_path.resize(graph.node_capacity(), false);
    scratch.cursors.clear();
    scratch.path_nodes.clear();
    scratch.path_edges.clear();
    scratch.on_path[source.index()] = true;
    scratch.path_nodes.push(source);
    scratch.cursors.push(0);
    stats.frames += 1;
    while let Some(depth) = scratch.cursors.len().checked_sub(1) {
        let node = scratch.path_nodes[depth];
        let neighbors = graph.adjacency_slice(node);
        let cursor = scratch.cursors[depth];
        if cursor >= neighbors.len() {
            scratch.cursors.pop();
            if let Some(n) = scratch.path_nodes.pop() {
                scratch.on_path[n.index()] = false;
            }
            scratch.path_edges.pop();
            continue;
        }
        scratch.cursors[depth] = cursor + 1;
        let adj = neighbors[cursor];

        if adj.node == target {
            let within = limits
                .max_nodes
                .is_none_or(|max| scratch.path_nodes.len() < max);
            if within {
                scratch.path_nodes.push(target);
                scratch.path_edges.push(adj.edge);
                emit(&scratch.path_nodes, &scratch.path_edges);
                scratch.path_nodes.pop();
                scratch.path_edges.pop();
                stats.emitted += 1;
                if stats.emitted >= cap {
                    break;
                }
            }
            continue;
        }
        if scratch.on_path[adj.node.index()] || !allowed(adj.node) {
            continue; // path tracking: never re-enter the current path
        }
        // Only descend if a target hop could still fit under the cap.
        let room = limits
            .max_nodes
            .is_none_or(|max| scratch.path_nodes.len() + 2 <= max);
        if !room {
            continue;
        }
        scratch.on_path[adj.node.index()] = true;
        scratch.path_nodes.push(adj.node);
        scratch.path_edges.push(adj.edge);
        scratch.cursors.push(0);
        stats.frames += 1;
    }
    scratch.path_nodes.clear();
    scratch.path_edges.clear();
    scratch.cursors.clear();
    stats
}

/// Lazy iterator over all simple paths from `source` to `target`.
pub struct SimplePaths<'g, N, E> {
    graph: &'g Graph<N, E>,
    target: NodeId,
    limits: PathLimits,
    stack: Vec<Frame>,
    on_path: Vec<bool>,
    path_nodes: Vec<NodeId>,
    path_edges: Vec<EdgeId>,
    emitted: usize,
    trivial_pending: bool,
    done: bool,
}

/// Enumerates all simple paths from `source` to `target`.
///
/// If `source == target` the single trivial path `[source]` is emitted
/// (a requester co-located with its provider uses no network components
/// beyond itself).
pub fn simple_paths<'g, N, E>(
    graph: &'g Graph<N, E>,
    source: NodeId,
    target: NodeId,
    limits: PathLimits,
) -> SimplePaths<'g, N, E> {
    let mut on_path = vec![false; graph.node_capacity()];
    let trivial = source == target && graph.contains_node(source);
    let mut stack = Vec::new();
    let mut path_nodes = Vec::new();
    if graph.contains_node(source) && graph.contains_node(target) && !trivial {
        on_path[source.index()] = true;
        path_nodes.push(source);
        stack.push(Frame {
            neighbors: graph.neighbors(source).collect(),
            cursor: 0,
        });
    }
    SimplePaths {
        graph,
        target,
        limits,
        stack,
        on_path,
        path_nodes,
        path_edges: Vec::new(),
        emitted: 0,
        trivial_pending: trivial,
        done: false,
    }
}

impl<N, E> Iterator for SimplePaths<'_, N, E> {
    type Item = Path;

    fn next(&mut self) -> Option<Path> {
        if self.done {
            return None;
        }
        if let Some(cap) = self.limits.max_paths {
            if self.emitted >= cap {
                self.done = true;
                return None;
            }
        }
        if self.trivial_pending {
            self.trivial_pending = false;
            self.done = true;
            self.emitted += 1;
            let source = self.target;
            return Some(Path {
                nodes: vec![source],
                edges: vec![],
            });
        }
        loop {
            let Some(frame) = self.stack.last_mut() else {
                self.done = true;
                return None;
            };
            if frame.cursor >= frame.neighbors.len() {
                // Exhausted: backtrack.
                self.stack.pop();
                if let Some(n) = self.path_nodes.pop() {
                    self.on_path[n.index()] = false;
                }
                self.path_edges.pop();
                continue;
            }
            let adj = frame.neighbors[frame.cursor];
            frame.cursor += 1;

            if adj.node == self.target {
                let within = self
                    .limits
                    .max_nodes
                    .is_none_or(|cap| self.path_nodes.len() < cap);
                if within {
                    let mut nodes = self.path_nodes.clone();
                    nodes.push(self.target);
                    let mut edges = self.path_edges.clone();
                    edges.push(adj.edge);
                    self.emitted += 1;
                    return Some(Path { nodes, edges });
                }
                continue;
            }
            if self.on_path[adj.node.index()] {
                continue; // path tracking: never re-enter the current path
            }
            // Only descend if a target hop could still fit under the cap.
            let room = self
                .limits
                .max_nodes
                .is_none_or(|cap| self.path_nodes.len() + 2 <= cap);
            if !room {
                continue;
            }
            self.on_path[adj.node.index()] = true;
            self.path_nodes.push(adj.node);
            self.path_edges.push(adj.edge);
            self.stack.push(Frame {
                neighbors: self.graph.neighbors(adj.node).collect(),
                cursor: 0,
            });
        }
    }
}

/// Collects all simple paths into a vector (convenience wrapper).
pub fn all_simple_paths<N, E>(graph: &Graph<N, E>, source: NodeId, target: NodeId) -> Vec<Path> {
    simple_paths(graph, source, target, PathLimits::unlimited()).collect()
}

/// Counts simple paths without materializing them.
pub fn count_simple_paths<N, E>(graph: &Graph<N, E>, source: NodeId, target: NodeId) -> usize {
    simple_paths(graph, source, target, PathLimits::unlimited()).count()
}

/// Computes the **minimal path sets** over nodes: the node sets of all
/// simple paths, with non-minimal sets (strict supersets of another path's
/// set) removed. This is the input to the sum-of-disjoint-products and
/// cut-set analyses in the `dependability` crate.
pub fn minimal_path_sets<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
) -> Vec<Vec<NodeId>> {
    let mut sets: Vec<Vec<NodeId>> = all_simple_paths(graph, source, target)
        .into_iter()
        .map(|p| {
            let mut nodes = p.nodes;
            nodes.sort_unstable();
            nodes
        })
        .collect();
    sets.sort();
    sets.dedup();
    // Subset minimization: keep a set only if no *other* kept set is a
    // strict subset. Sorting by length lets us only test shorter sets.
    sets.sort_by_key(Vec::len);
    let mut minimal: Vec<Vec<NodeId>> = Vec::new();
    'outer: for candidate in sets {
        for kept in &minimal {
            if is_subset(kept, &candidate) {
                continue 'outer;
            }
        }
        minimal.push(candidate);
    }
    minimal
}

/// `true` if sorted slice `a` ⊆ sorted slice `b`.
fn is_subset(a: &[NodeId], b: &[NodeId]) -> bool {
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            if y == x {
                continue 'outer;
            }
            if y > x {
                return false;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn complete(n: usize) -> (Graph<usize, ()>, Vec<NodeId>) {
        let mut g = Graph::new_undirected();
        let ids: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(ids[i], ids[j], ());
            }
        }
        (g, ids)
    }

    /// Expected #simple paths between two distinct vertices of `K_n`:
    /// sum over k intermediates of (n-2)!/(n-2-k)!.
    fn expected_kn_paths(n: usize) -> usize {
        let m = n - 2;
        (0..=m).map(|k| ((m - k + 1)..=m).product::<usize>()).sum()
    }

    #[test]
    fn triangle_has_two_paths() {
        let (g, ids) = complete(3);
        let paths = all_simple_paths(&g, ids[0], ids[2]);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert!(p.validate(&g));
            assert_eq!(p.source(), ids[0]);
            assert_eq!(p.target(), ids[2]);
        }
    }

    #[test]
    fn complete_graph_counts_match_formula() {
        for n in 2..=6 {
            let (g, ids) = complete(n);
            assert_eq!(
                count_simple_paths(&g, ids[0], ids[1]),
                expected_kn_paths(n),
                "K_{n}"
            );
        }
    }

    #[test]
    fn parallel_edges_give_distinct_paths() {
        let mut g: Graph<&str, u8> = Graph::new_undirected();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        let paths = all_simple_paths(&g, a, b);
        assert_eq!(paths.len(), 2);
        assert_ne!(paths[0].edges, paths[1].edges);
        assert_eq!(paths[0].nodes, paths[1].nodes);
    }

    #[test]
    fn directed_graph_respects_orientation() {
        let mut g: Graph<(), ()> = Graph::new_directed();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(c, a, ()); // back edge must not create an a->c shortcut
        assert_eq!(count_simple_paths(&g, a, c), 1);
        assert_eq!(count_simple_paths(&g, c, b), 1); // c->a->b
    }

    #[test]
    fn trivial_path_when_source_equals_target() {
        let (g, ids) = complete(3);
        let paths = all_simple_paths(&g, ids[0], ids[0]);
        assert_eq!(paths.len(), 1);
        assert!(paths[0].is_empty());
        assert_eq!(paths[0].nodes, vec![ids[0]]);
    }

    #[test]
    fn unreachable_target_yields_no_paths() {
        let mut g: Graph<(), ()> = Graph::new_undirected();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        assert_eq!(count_simple_paths(&g, a, c), 0);
    }

    #[test]
    fn max_paths_limit_respected() {
        let (g, ids) = complete(6);
        let limited: Vec<_> =
            simple_paths(&g, ids[0], ids[1], PathLimits::default().with_max_paths(7)).collect();
        assert_eq!(limited.len(), 7);
    }

    #[test]
    fn max_nodes_limit_respected() {
        let (g, ids) = complete(5);
        let limited: Vec<_> =
            simple_paths(&g, ids[0], ids[1], PathLimits::default().with_max_nodes(3)).collect();
        // direct (2 nodes) + one-intermediate paths (3 nodes): 1 + 3 = 4
        assert_eq!(limited.len(), 4);
        assert!(limited.iter().all(|p| p.nodes.len() <= 3));
    }

    #[test]
    fn cycles_do_not_livelock() {
        // Ring of 6: exactly 2 simple paths between opposite nodes.
        let mut g: Graph<usize, ()> = Graph::new_undirected();
        let ids: Vec<_> = (0..6).map(|i| g.add_node(i)).collect();
        for i in 0..6 {
            g.add_edge(ids[i], ids[(i + 1) % 6], ());
        }
        assert_eq!(count_simple_paths(&g, ids[0], ids[3]), 2);
    }

    #[test]
    fn all_emitted_paths_are_valid_and_unique() {
        let (g, ids) = complete(5);
        let paths = all_simple_paths(&g, ids[0], ids[4]);
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            assert!(p.validate(&g));
            assert!(seen.insert(p.clone()), "duplicate path {p:?}");
        }
    }

    #[test]
    fn minimal_path_sets_drop_supersets() {
        // a - b - t  plus direct a - t: the 2-node set {a,t} makes the
        // 3-node set {a,b,t} non-minimal.
        let mut g: Graph<&str, ()> = Graph::new_undirected();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let t = g.add_node("t");
        g.add_edge(a, b, ());
        g.add_edge(b, t, ());
        g.add_edge(a, t, ());
        let sets = minimal_path_sets(&g, a, t);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 2);
    }

    #[test]
    fn minimal_path_sets_keep_disjoint_routes() {
        // Two disjoint 3-hop routes: both minimal.
        let mut g: Graph<&str, ()> = Graph::new_undirected();
        let s = g.add_node("s");
        let x = g.add_node("x");
        let y = g.add_node("y");
        let t = g.add_node("t");
        g.add_edge(s, x, ());
        g.add_edge(x, t, ());
        g.add_edge(s, y, ());
        g.add_edge(y, t, ());
        assert_eq!(minimal_path_sets(&g, s, t).len(), 2);
    }

    fn collect_visited(
        g: &Graph<usize, ()>,
        s: NodeId,
        t: NodeId,
        limits: PathLimits,
        mask: Option<&[bool]>,
        scratch: &mut DiscoveryScratch,
    ) -> (Vec<Path>, EnumerationStats) {
        let mut out = Vec::new();
        let stats = for_each_simple_path(g, s, t, limits, mask, scratch, |nodes, edges| {
            out.push(Path {
                nodes: nodes.to_vec(),
                edges: edges.to_vec(),
            })
        });
        (out, stats)
    }

    #[test]
    fn visitor_enumeration_matches_iterator_order_and_limits() {
        let (g, ids) = complete(6);
        let mut scratch = DiscoveryScratch::new();
        for limits in [
            PathLimits::unlimited(),
            PathLimits::default().with_max_paths(7),
            PathLimits::default().with_max_nodes(3),
            PathLimits::default().with_max_nodes(4).with_max_paths(5),
        ] {
            let expected: Vec<_> = simple_paths(&g, ids[0], ids[5], limits).collect();
            let (got, stats) = collect_visited(&g, ids[0], ids[5], limits, None, &mut scratch);
            assert_eq!(got, expected, "limits {limits:?}");
            assert_eq!(stats.emitted, expected.len());
            assert!(stats.frames >= 1);
        }
    }

    #[test]
    fn visitor_enumeration_trivial_and_missing_endpoints() {
        let (g, ids) = complete(3);
        let mut scratch = DiscoveryScratch::new();
        let (paths, stats) = collect_visited(
            &g,
            ids[0],
            ids[0],
            PathLimits::unlimited(),
            None,
            &mut scratch,
        );
        assert_eq!(stats.emitted, 1);
        assert!(paths[0].is_empty());
        let dead = NodeId::from_index(77);
        let (paths, stats) = collect_visited(
            &g,
            ids[0],
            dead,
            PathLimits::unlimited(),
            None,
            &mut scratch,
        );
        assert!(paths.is_empty());
        assert_eq!(stats, EnumerationStats::default());
    }

    #[test]
    fn mask_restricts_search_like_node_removal() {
        // Square a-b-t, a-c-t: masking out c leaves exactly the path via b.
        let mut g: Graph<usize, ()> = Graph::new_undirected();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        let t = g.add_node(3);
        g.add_edge(a, b, ());
        g.add_edge(b, t, ());
        g.add_edge(a, c, ());
        g.add_edge(c, t, ());
        let mut mask = vec![true; g.node_capacity()];
        mask[c.index()] = false;
        let mut scratch = DiscoveryScratch::new();
        let (paths, _) =
            collect_visited(&g, a, t, PathLimits::unlimited(), Some(&mask), &mut scratch);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes, vec![a, b, t]);
        // A mask excluding an endpoint yields nothing.
        mask[t.index()] = false;
        let (paths, stats) =
            collect_visited(&g, a, t, PathLimits::unlimited(), Some(&mask), &mut scratch);
        assert!(paths.is_empty());
        assert_eq!(stats.frames, 0);
    }

    #[test]
    fn max_paths_zero_emits_nothing() {
        let (g, ids) = complete(4);
        let mut scratch = DiscoveryScratch::new();
        let (paths, stats) = collect_visited(
            &g,
            ids[0],
            ids[1],
            PathLimits::default().with_max_paths(0),
            None,
            &mut scratch,
        );
        assert!(paths.is_empty());
        assert_eq!(stats.frames, 0);
    }

    #[test]
    fn scratch_reuse_across_graphs_is_clean() {
        let (big, big_ids) = complete(6);
        let (small, small_ids) = complete(3);
        let mut scratch = DiscoveryScratch::new();
        let (_, _) = collect_visited(
            &big,
            big_ids[0],
            big_ids[5],
            PathLimits::unlimited(),
            None,
            &mut scratch,
        );
        let (paths, _) = collect_visited(
            &small,
            small_ids[0],
            small_ids[2],
            PathLimits::unlimited(),
            None,
            &mut scratch,
        );
        assert_eq!(paths.len(), 2, "stale scratch state must not leak");
    }

    #[test]
    fn is_subset_logic() {
        let a = [NodeId::from_index(1), NodeId::from_index(3)];
        let b = [
            NodeId::from_index(1),
            NodeId::from_index(2),
            NodeId::from_index(3),
        ];
        assert!(is_subset(&a, &b));
        assert!(!is_subset(&b, &a));
        assert!(is_subset(&[], &a));
    }
}
