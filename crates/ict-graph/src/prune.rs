//! Block-cut-tree pruning for the all-simple-paths search.
//!
//! Path discovery (paper Sec. V-D) is the methodology's only
//! super-polynomial step, yet on real campus topologies almost all of the
//! graph is provably irrelevant to any given `(source, target)` pair: a
//! node can lie on *some* simple path between `s` and `t` **iff** it
//! belongs to a biconnected component (block) on the unique path between
//! `s` and `t` in the graph's block-cut tree. Access subtrees hanging off
//! that path are dead weight the plain DFS discovers one dead end at a
//! time; this module removes them before enumeration starts.
//!
//! [`BlockCutTree`] computes blocks, cut vertices, and connected components
//! once per graph build (linear time, iterative Tarjan DFS — same idiom as
//! [`crate::connectivity::critical_elements`]). [`BlockCutTree::relevant_nodes`]
//! then answers per-pair queries by walking the tree path between the two
//! endpoints and unioning the block node sets, producing a mask for
//! [`crate::paths::for_each_simple_path`].
//!
//! **Soundness on directed graphs:** blocks are computed on the undirected
//! view. Every directed simple path is also an undirected simple path, so
//! the mask is a (possibly loose) superset of the relevant nodes — pruning
//! never removes a genuine path, it merely prunes less aggressively.

use std::collections::VecDeque;

use crate::graph::{EdgeId, Graph, NodeId};
use crate::paths::{for_each_simple_path, DiscoveryScratch, EnumerationStats, Path, PathLimits};

const UNASSIGNED: u32 = u32::MAX;
/// `parent[b]` marker for BFS roots (blocks containing the source).
const BFS_ROOT: u32 = u32::MAX - 1;

/// Biconnected components, cut vertices, and connected components of a
/// graph, queryable as a block-cut tree.
///
/// Self-loops are ignored (they can never lie on a simple path). Directed
/// edges are treated as undirected (see module docs for why that is sound).
#[derive(Debug, Clone)]
pub struct BlockCutTree {
    /// Node sets of each block, indexed by block id.
    block_nodes: Vec<Vec<NodeId>>,
    /// Blocks containing each node index (cut vertices belong to several).
    node_blocks: Vec<Vec<u32>>,
    /// Block id per edge index (`UNASSIGNED` for dead or self-loop edges).
    edge_block: Vec<u32>,
    /// Cut-vertex flag per node index.
    is_cut: Vec<bool>,
    /// Connected-component id per node index (`UNASSIGNED` for dead slots).
    component: Vec<u32>,
}

impl BlockCutTree {
    /// Computes blocks, cut vertices and connected components in one
    /// iterative DFS over the (undirected view of the) graph.
    pub fn new<N, E>(graph: &Graph<N, E>) -> Self {
        let cap = graph.node_capacity();
        // Undirected adjacency over live, non-loop edges. Built explicitly
        // so directed graphs get their undirected view; one-time cost at
        // graph build, amortized over every per-pair query.
        let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); cap];
        for (id, s, t, _) in graph.edges() {
            if s == t {
                continue; // self-loops never lie on a simple path
            }
            adj[s.index()].push((t, id));
            adj[t.index()].push((s, id));
        }

        let mut tree = BlockCutTree {
            block_nodes: Vec::new(),
            node_blocks: vec![Vec::new(); cap],
            edge_block: vec![UNASSIGNED; graph.edge_capacity()],
            is_cut: vec![false; cap],
            component: vec![UNASSIGNED; cap],
        };
        let mut disc = vec![0u32; cap]; // discovery time, 0 = unvisited
        let mut low = vec![0u32; cap];
        let mut timer = 0u32;
        let mut components = 0u32;
        let mut edge_stack: Vec<EdgeId> = Vec::new();
        // Stamp array deduplicating node membership while a block is popped.
        let mut block_stamp = vec![UNASSIGNED; cap];

        struct DfsFrame {
            node: NodeId,
            parent_edge: Option<EdgeId>,
            cursor: usize,
        }

        for root in graph.node_ids() {
            if disc[root.index()] != 0 {
                continue;
            }
            let comp = components;
            components += 1;
            timer += 1;
            disc[root.index()] = timer;
            low[root.index()] = timer;
            tree.component[root.index()] = comp;
            let mut root_children = 0usize;
            let mut stack = vec![DfsFrame {
                node: root,
                parent_edge: None,
                cursor: 0,
            }];
            while let Some(frame) = stack.last_mut() {
                let u = frame.node;
                if frame.cursor < adj[u.index()].len() {
                    let (v, e) = adj[u.index()][frame.cursor];
                    frame.cursor += 1;
                    if frame.parent_edge == Some(e) {
                        continue; // don't reuse the tree edge; parallel edges do recurse
                    }
                    if disc[v.index()] == 0 {
                        // Tree edge: descend.
                        edge_stack.push(e);
                        timer += 1;
                        disc[v.index()] = timer;
                        low[v.index()] = timer;
                        tree.component[v.index()] = comp;
                        if u == root {
                            root_children += 1;
                        }
                        stack.push(DfsFrame {
                            node: v,
                            parent_edge: Some(e),
                            cursor: 0,
                        });
                    } else if disc[v.index()] < disc[u.index()] {
                        // Back edge to an ancestor; forward edges are the
                        // same physical edge seen from the other side and
                        // must not be stacked twice.
                        edge_stack.push(e);
                        low[u.index()] = low[u.index()].min(disc[v.index()]);
                    }
                } else {
                    let child = stack.pop().expect("frame exists");
                    let Some(parent_frame) = stack.last() else {
                        continue; // root retreat: all blocks already popped
                    };
                    let p = parent_frame.node;
                    let v = child.node;
                    low[p.index()] = low[p.index()].min(low[v.index()]);
                    if low[v.index()] >= disc[p.index()] {
                        // `p` separates `v`'s subtree: pop one block.
                        if p != root {
                            tree.is_cut[p.index()] = true;
                        }
                        let parent_edge = child.parent_edge.expect("non-root child");
                        let bid = tree.block_nodes.len() as u32;
                        tree.block_nodes.push(Vec::new());
                        loop {
                            let e = edge_stack.pop().expect("edge stack underflow");
                            tree.edge_block[e.index()] = bid;
                            let (es, et) = graph.endpoints(e).expect("live edge");
                            for n in [es, et] {
                                if block_stamp[n.index()] != bid {
                                    block_stamp[n.index()] = bid;
                                    tree.block_nodes[bid as usize].push(n);
                                    tree.node_blocks[n.index()].push(bid);
                                }
                            }
                            if e == parent_edge {
                                break;
                            }
                        }
                    }
                }
            }
            if root_children >= 2 {
                tree.is_cut[root.index()] = true;
            }
        }
        tree
    }

    /// Number of biconnected components (blocks).
    pub fn block_count(&self) -> usize {
        self.block_nodes.len()
    }

    /// `true` if removing `node` would disconnect its component.
    pub fn is_cut_vertex(&self, node: NodeId) -> bool {
        self.is_cut.get(node.index()).copied().unwrap_or(false)
    }

    /// The node set of block `block` (unspecified order).
    pub fn block(&self, block: usize) -> &[NodeId] {
        &self.block_nodes[block]
    }

    /// The block containing `edge`, if it is live and not a self-loop.
    pub fn edge_block(&self, edge: EdgeId) -> Option<usize> {
        match self.edge_block.get(edge.index()) {
            Some(&b) if b != UNASSIGNED => Some(b as usize),
            _ => None,
        }
    }

    /// `true` when `source` and `target` are live nodes of the same
    /// connected component (a necessary condition for any path).
    pub fn connected(&self, source: NodeId, target: NodeId) -> bool {
        match (
            self.component.get(source.index()),
            self.component.get(target.index()),
        ) {
            (Some(&a), Some(&b)) => a != UNASSIGNED && a == b,
            _ => false,
        }
    }

    /// Fills `mask` (re-sized to the graph's node capacity) with exactly
    /// the nodes that can lie on **some** simple path from `source` to
    /// `target`: the union of the blocks on the block-cut-tree path between
    /// them. Returns the number of allowed nodes (0 when no path exists).
    ///
    /// The mask plugs directly into
    /// [`crate::paths::for_each_simple_path`]; `mask` is reusable across
    /// calls without reallocation.
    pub fn relevant_nodes(&self, source: NodeId, target: NodeId, mask: &mut Vec<bool>) -> usize {
        mask.clear();
        mask.resize(self.node_blocks.len(), false);
        if !self.connected(source, target) {
            return 0;
        }
        if source == target {
            mask[source.index()] = true;
            return 1;
        }
        // BFS over the block-cut tree, block vertices only (cut vertices
        // are traversed implicitly): start from every block containing the
        // source — equivalent to rooting at the source's tree vertex.
        let mut parent = vec![UNASSIGNED; self.block_nodes.len()];
        let mut queue = VecDeque::new();
        for &b in &self.node_blocks[source.index()] {
            parent[b as usize] = BFS_ROOT;
            queue.push_back(b);
        }
        let target_blocks = &self.node_blocks[target.index()];
        let mut found = None;
        'bfs: while let Some(b) = queue.pop_front() {
            if target_blocks.contains(&b) {
                found = Some(b);
                break 'bfs;
            }
            for &v in &self.block_nodes[b as usize] {
                if !self.is_cut[v.index()] {
                    continue;
                }
                for &next in &self.node_blocks[v.index()] {
                    if parent[next as usize] == UNASSIGNED {
                        parent[next as usize] = b;
                        queue.push_back(next);
                    }
                }
            }
        }
        // Same component and distinct endpoints implies both touch at
        // least one edge, hence at least one block, and the tree connects
        // them — but stay defensive.
        let Some(found) = found else {
            return 0;
        };
        let mut allowed = 0usize;
        let mut cursor = found;
        loop {
            for &n in &self.block_nodes[cursor as usize] {
                if !mask[n.index()] {
                    mask[n.index()] = true;
                    allowed += 1;
                }
            }
            match parent[cursor as usize] {
                BFS_ROOT => break,
                next => cursor = next,
            }
        }
        allowed
    }
}

/// Enumerates all simple paths between `source` and `target` with
/// block-cut-tree pruning: builds a [`BlockCutTree`], masks the search to
/// the relevant blocks, and runs the allocation-lean DFS. The result is the
/// same path multiset (in the same DFS order) as
/// [`crate::paths::simple_paths`].
///
/// For repeated queries over one graph, build the tree once and drive
/// [`for_each_simple_path`] with a reused mask/scratch instead.
pub fn pruned_simple_paths<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    limits: PathLimits,
) -> Vec<Path> {
    let tree = BlockCutTree::new(graph);
    let mut mask = Vec::new();
    let mut out = Vec::new();
    if tree.relevant_nodes(source, target, &mut mask) == 0 {
        return out;
    }
    let mut scratch = DiscoveryScratch::new();
    let _: EnumerationStats = for_each_simple_path(
        graph,
        source,
        target,
        limits,
        Some(&mask),
        &mut scratch,
        |nodes, edges| {
            out.push(Path {
                nodes: nodes.to_vec(),
                edges: edges.to_vec(),
            })
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::all_simple_paths;

    /// Two triangles sharing the cut vertex `c`, plus a pendant `tail`:
    ///
    /// ```text
    ///   a --- b        d --- e
    ///    \   /          \   /
    ///      c ------------ (c)    c --- tail
    /// ```
    fn two_triangles_and_tail() -> (Graph<&'static str, ()>, [NodeId; 6]) {
        let mut g = Graph::new_undirected();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        let e = g.add_node("e");
        let tail = g.add_node("tail");
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(c, a, ());
        g.add_edge(c, d, ());
        g.add_edge(d, e, ());
        g.add_edge(e, c, ());
        g.add_edge(c, tail, ());
        (g, [a, b, c, d, e, tail])
    }

    #[test]
    fn blocks_and_cut_vertices_of_two_triangles() {
        let (g, [a, b, c, d, e, tail]) = two_triangles_and_tail();
        let tree = BlockCutTree::new(&g);
        // Three blocks: each triangle and the c-tail bridge.
        assert_eq!(tree.block_count(), 3);
        assert!(tree.is_cut_vertex(c));
        for n in [a, b, d, e, tail] {
            assert!(!tree.is_cut_vertex(n), "{:?}", g.node(n));
        }
        // Both triangle edges of one triangle share a block.
        let ab = g.find_edge(a, b).unwrap();
        let bc = g.find_edge(b, c).unwrap();
        let de = g.find_edge(d, e).unwrap();
        assert_eq!(tree.edge_block(ab), tree.edge_block(bc));
        assert_ne!(tree.edge_block(ab), tree.edge_block(de));
    }

    #[test]
    fn relevant_nodes_collapses_to_tree_path() {
        let (g, [a, b, c, d, e, tail]) = two_triangles_and_tail();
        let tree = BlockCutTree::new(&g);
        let mut mask = Vec::new();
        // a -> e crosses both triangles but never the tail.
        let n = tree.relevant_nodes(a, e, &mut mask);
        assert_eq!(n, 5);
        for node in [a, b, c, d, e] {
            assert!(mask[node.index()]);
        }
        assert!(!mask[tail.index()]);
        // a -> b stays inside one triangle.
        let n = tree.relevant_nodes(a, b, &mut mask);
        assert_eq!(n, 3);
        assert!(!mask[d.index()] && !mask[e.index()] && !mask[tail.index()]);
        // tail -> d: bridge block + second triangle (c is the junction).
        let n = tree.relevant_nodes(tail, d, &mut mask);
        assert_eq!(n, 4);
        assert!(!mask[a.index()] && !mask[b.index()]);
    }

    #[test]
    fn relevant_nodes_trivial_and_disconnected() {
        let (mut g, [a, _, _, _, _, _]) = two_triangles_and_tail();
        let lonely = g.add_node("lonely");
        let tree = BlockCutTree::new(&g);
        let mut mask = Vec::new();
        assert_eq!(tree.relevant_nodes(a, lonely, &mut mask), 0);
        assert!(mask.iter().all(|&m| !m));
        assert_eq!(tree.relevant_nodes(a, a, &mut mask), 1);
        assert!(mask[a.index()]);
        assert!(!tree.connected(a, lonely));
        assert!(tree.connected(a, a));
    }

    #[test]
    fn parallel_edges_form_a_cycle_block() {
        let mut g: Graph<&str, u8> = Graph::new_undirected();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let e1 = g.add_edge(a, b, 1);
        let e2 = g.add_edge(a, b, 2);
        let e3 = g.add_edge(b, c, 3);
        let tree = BlockCutTree::new(&g);
        // The parallel pair is 2-edge-connected (one block); b-c is a bridge.
        assert_eq!(tree.block_count(), 2);
        assert_eq!(tree.edge_block(e1), tree.edge_block(e2));
        assert_ne!(tree.edge_block(e1), tree.edge_block(e3));
        assert!(tree.is_cut_vertex(b));
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g: Graph<&str, ()> = Graph::new_undirected();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let looped = g.add_edge(a, a, ());
        g.add_edge(a, b, ());
        let tree = BlockCutTree::new(&g);
        assert_eq!(tree.block_count(), 1);
        assert_eq!(tree.edge_block(looped), None);
        let mut mask = Vec::new();
        assert_eq!(tree.relevant_nodes(a, b, &mut mask), 2);
    }

    #[test]
    fn pruned_equals_unpruned_on_fixture() {
        let (g, ids) = two_triangles_and_tail();
        for &s in &ids {
            for &t in &ids {
                let mut expected = all_simple_paths(&g, s, t);
                let mut got = pruned_simple_paths(&g, s, t, PathLimits::unlimited());
                assert_eq!(got, expected, "pre-sort order must match too");
                expected.sort();
                got.sort();
                assert_eq!(got, expected);
            }
        }
    }

    #[test]
    fn pruned_respects_caps_like_unpruned() {
        let (g, ids) = two_triangles_and_tail();
        let limits = PathLimits::default().with_max_paths(2).with_max_nodes(4);
        let expected: Vec<_> = crate::paths::simple_paths(&g, ids[0], ids[4], limits).collect();
        let got = pruned_simple_paths(&g, ids[0], ids[4], limits);
        assert_eq!(got, expected);
    }

    #[test]
    fn directed_graph_pruning_is_sound() {
        // Directed cycle a->b->c->a plus pendant c->d: pruning uses the
        // undirected view but must not lose directed paths.
        let mut g: Graph<&str, ()> = Graph::new_directed();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(c, a, ());
        g.add_edge(c, d, ());
        for (s, t) in [(a, c), (c, b), (a, d), (d, a)] {
            assert_eq!(
                pruned_simple_paths(&g, s, t, PathLimits::unlimited()),
                all_simple_paths(&g, s, t),
            );
        }
    }

    #[test]
    fn tombstoned_graph_is_handled() {
        let (mut g, [a, b, _c, _, e, tail]) = two_triangles_and_tail();
        g.remove_node(b);
        let tree = BlockCutTree::new(&g);
        let mut mask = Vec::new();
        // a-c is now a bridge; a -> e goes a-c then the second triangle.
        let n = tree.relevant_nodes(a, e, &mut mask);
        assert_eq!(n, 4);
        assert!(!mask[b.index()] && !mask[tail.index()]);
        assert_eq!(
            pruned_simple_paths(&g, a, e, PathLimits::unlimited()),
            all_simple_paths(&g, a, e),
        );
    }
}
