//! Structural graph statistics used by the experiment reports.

use crate::graph::{Graph, NodeId};
use crate::traversal::Bfs;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Live node count.
    pub nodes: usize,
    /// Live edge count.
    pub edges: usize,
    /// Minimum degree over live nodes (0 for the empty graph).
    pub min_degree: usize,
    /// Maximum degree over live nodes.
    pub max_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Edge density `2m / (n (n-1))` for undirected graphs
    /// (`m / (n (n-1))` for directed).
    pub density: f64,
    /// Number of connected components.
    pub components: usize,
    /// Longest shortest-path (hops) within any component; `None` if empty.
    pub diameter: Option<usize>,
}

/// Computes [`GraphMetrics`]. Diameter is exact (`O(n·m)` all-source BFS),
/// fine for model-scale graphs.
pub fn metrics<N, E>(graph: &Graph<N, E>) -> GraphMetrics {
    let n = graph.node_count();
    let m = graph.edge_count();
    let degrees: Vec<usize> = graph.node_ids().map(|id| graph.degree(id)).collect();
    let min_degree = degrees.iter().copied().min().unwrap_or(0);
    let max_degree = degrees.iter().copied().max().unwrap_or(0);
    let mean_degree = if n == 0 {
        0.0
    } else {
        degrees.iter().sum::<usize>() as f64 / n as f64
    };
    let density = if n < 2 {
        0.0
    } else {
        let pairs = (n * (n - 1)) as f64;
        if graph.is_directed() {
            m as f64 / pairs
        } else {
            2.0 * m as f64 / pairs
        }
    };
    let components = crate::connectivity::connected_components(graph).len();
    let diameter = diameter(graph);
    GraphMetrics {
        nodes: n,
        edges: m,
        min_degree,
        max_degree,
        mean_degree,
        density,
        components,
        diameter,
    }
}

/// Eccentricity of `start`: hops to the farthest reachable node.
pub fn eccentricity<N, E>(graph: &Graph<N, E>, start: NodeId) -> usize {
    let mut depth = vec![usize::MAX; graph.node_capacity()];
    depth[start.index()] = 0;
    let mut bfs = Bfs::new(graph, start);
    let mut max = 0;
    while let Some(node) = bfs.next(graph) {
        let d = depth[node.index()];
        max = max.max(d);
        for adj in graph.neighbors(node) {
            if depth[adj.node.index()] == usize::MAX {
                depth[adj.node.index()] = d + 1;
            }
        }
    }
    max
}

/// Exact diameter over all components (max eccentricity); `None` for the
/// empty graph.
pub fn diameter<N, E>(graph: &Graph<N, E>) -> Option<usize> {
    graph.node_ids().map(|n| eccentricity(graph, n)).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn metrics_of_chain() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let ids: Vec<_> = (0..4).map(|i| g.add_node(i)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        let m = metrics(&g);
        assert_eq!(m.nodes, 4);
        assert_eq!(m.edges, 3);
        assert_eq!(m.min_degree, 1);
        assert_eq!(m.max_degree, 2);
        assert_eq!(m.components, 1);
        assert_eq!(m.diameter, Some(3));
        assert!((m.density - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metrics_of_empty_graph() {
        let g: Graph<(), ()> = Graph::new_undirected();
        let m = metrics(&g);
        assert_eq!(m.nodes, 0);
        assert_eq!(m.diameter, None);
        assert_eq!(m.components, 0);
    }

    #[test]
    fn eccentricity_of_star_center_vs_leaf() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let center = g.add_node(0);
        let leaves: Vec<_> = (1..5).map(|i| g.add_node(i)).collect();
        for &l in &leaves {
            g.add_edge(center, l, ());
        }
        assert_eq!(eccentricity(&g, center), 1);
        assert_eq!(eccentricity(&g, leaves[0]), 2);
        assert_eq!(diameter(&g), Some(2));
    }

    #[test]
    fn diameter_of_disconnected_is_max_of_components() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        g.add_edge(a, b, ());
        let _ = c;
        assert_eq!(diameter(&g), Some(1));
    }
}
