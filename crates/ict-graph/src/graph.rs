//! The core graph data structure.
//!
//! Design notes:
//!
//! * **Index-stable**: [`NodeId`]/[`EdgeId`] are small copyable handles that
//!   stay valid across unrelated removals (removed slots become tombstones).
//!   This matters for the dynamicity experiments (paper Sec. V-A3), where a
//!   topology change must not invalidate the identities of the surviving
//!   components.
//! * **Multigraph**: the USI case study contains redundant links between the
//!   same device pair; parallel edges are first-class.
//! * **Directed or undirected**: infrastructure graphs are undirected
//!   (a network link carries traffic both ways), activity/flow graphs are
//!   directed.

use std::fmt;

/// Handle to a node. Stable across removals of *other* nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Handle to an edge. Stable across removals of *other* edges.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node (for dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index previously obtained via
    /// [`NodeId::index`]. The caller must ensure it refers to a live node of
    /// the same graph.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl EdgeId {
    /// The raw index of this edge (for dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a raw index previously obtained via
    /// [`EdgeId::index`].
    pub fn from_index(index: usize) -> Self {
        EdgeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Whether edges are traversable in one or both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Edges may be traversed both ways (network links).
    Undirected,
    /// Edges may only be traversed from source to target (control flow).
    Directed,
}

#[derive(Debug, Clone)]
struct EdgeRecord<E> {
    source: NodeId,
    target: NodeId,
    weight: E,
}

/// An adjacency entry: the neighbouring node and the connecting edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adjacency {
    /// The node on the other end of the edge (for directed graphs: the
    /// target when iterating out-neighbours).
    pub node: NodeId,
    /// The connecting edge.
    pub edge: EdgeId,
}

/// An index-stable directed or undirected multigraph.
#[derive(Debug, Clone)]
pub struct Graph<N, E> {
    direction: Direction,
    nodes: Vec<Option<N>>,
    edges: Vec<Option<EdgeRecord<E>>>,
    /// Outgoing adjacency (for undirected graphs: all incident edges).
    adjacency: Vec<Vec<Adjacency>>,
    /// Incoming adjacency, maintained only for directed graphs.
    in_adjacency: Vec<Vec<Adjacency>>,
    live_nodes: usize,
    live_edges: usize,
}

impl<N, E> Graph<N, E> {
    /// Creates an empty graph with the given edge direction semantics.
    pub fn new(direction: Direction) -> Self {
        Graph {
            direction,
            nodes: Vec::new(),
            edges: Vec::new(),
            adjacency: Vec::new(),
            in_adjacency: Vec::new(),
            live_nodes: 0,
            live_edges: 0,
        }
    }

    /// Creates an empty undirected graph.
    pub fn new_undirected() -> Self {
        Self::new(Direction::Undirected)
    }

    /// Creates an empty directed graph.
    pub fn new_directed() -> Self {
        Self::new(Direction::Directed)
    }

    /// The direction semantics of this graph.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// `true` if edges are directed.
    pub fn is_directed(&self) -> bool {
        self.direction == Direction::Directed
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Upper bound over all node indices ever allocated (for side tables).
    pub fn node_capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Upper bound over all edge indices ever allocated (for side tables).
    pub fn edge_capacity(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node and returns its handle.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(weight));
        self.adjacency.push(Vec::new());
        self.in_adjacency.push(Vec::new());
        self.live_nodes += 1;
        id
    }

    /// Adds an edge between two live nodes and returns its handle.
    ///
    /// # Panics
    /// Panics if either endpoint is not a live node.
    pub fn add_edge(&mut self, source: NodeId, target: NodeId, weight: E) -> EdgeId {
        assert!(
            self.contains_node(source),
            "source {source:?} is not a live node"
        );
        assert!(
            self.contains_node(target),
            "target {target:?} is not a live node"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Some(EdgeRecord {
            source,
            target,
            weight,
        }));
        self.adjacency[source.index()].push(Adjacency {
            node: target,
            edge: id,
        });
        match self.direction {
            Direction::Undirected => {
                if source != target {
                    self.adjacency[target.index()].push(Adjacency {
                        node: source,
                        edge: id,
                    });
                }
            }
            Direction::Directed => {
                self.in_adjacency[target.index()].push(Adjacency {
                    node: source,
                    edge: id,
                });
            }
        }
        self.live_edges += 1;
        id
    }

    /// `true` if `id` refers to a live node.
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(Option::is_some)
    }

    /// `true` if `id` refers to a live edge.
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges.get(id.index()).is_some_and(Option::is_some)
    }

    /// The weight of a live node.
    pub fn node(&self, id: NodeId) -> Option<&N> {
        self.nodes.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable access to a node weight.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut N> {
        self.nodes.get_mut(id.index()).and_then(Option::as_mut)
    }

    /// The weight of a live edge.
    pub fn edge(&self, id: EdgeId) -> Option<&E> {
        self.edges
            .get(id.index())
            .and_then(|e| e.as_ref().map(|r| &r.weight))
    }

    /// Mutable access to an edge weight.
    pub fn edge_mut(&mut self, id: EdgeId) -> Option<&mut E> {
        self.edges
            .get_mut(id.index())
            .and_then(|e| e.as_mut().map(|r| &mut r.weight))
    }

    /// The `(source, target)` endpoints of a live edge.
    pub fn endpoints(&self, id: EdgeId) -> Option<(NodeId, NodeId)> {
        self.edges
            .get(id.index())
            .and_then(|e| e.as_ref().map(|r| (r.source, r.target)))
    }

    /// Given one endpoint of an edge, returns the other.
    pub fn opposite(&self, id: EdgeId, node: NodeId) -> Option<NodeId> {
        let (s, t) = self.endpoints(id)?;
        if node == s {
            Some(t)
        } else if node == t {
            Some(s)
        } else {
            None
        }
    }

    /// Iterates over live node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|_| NodeId(i as u32)))
    }

    /// Iterates over `(id, weight)` for live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|w| (NodeId(i as u32), w)))
    }

    /// Iterates over live edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|_| EdgeId(i as u32)))
    }

    /// Iterates over `(id, source, target, weight)` for live edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> {
        self.edges.iter().enumerate().filter_map(|(i, e)| {
            e.as_ref()
                .map(|r| (EdgeId(i as u32), r.source, r.target, &r.weight))
        })
    }

    /// Out-adjacency of a node (all incident edges for undirected graphs).
    ///
    /// Entries for edges removed via [`Graph::remove_edge`] are filtered out.
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = Adjacency> + '_ {
        self.adjacency
            .get(id.index())
            .into_iter()
            .flatten()
            .copied()
            .filter(|a| self.contains_edge(a.edge))
    }

    /// Raw out-adjacency slice of a node (all incident edges for undirected
    /// graphs). Unlike [`Graph::neighbors`] this performs no per-entry
    /// liveness filtering — the removal APIs ([`Graph::remove_edge`],
    /// [`Graph::remove_node`]) compact adjacency lists eagerly, so every
    /// entry refers to a live edge and therefore a live neighbour. Hot
    /// enumeration loops use this to walk neighbours by cursor without
    /// collecting an iterator into a fresh `Vec` per visited node.
    pub fn adjacency_slice(&self, id: NodeId) -> &[Adjacency] {
        self.adjacency
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// In-adjacency of a node. Empty iterator for undirected graphs (use
    /// [`Graph::neighbors`] there).
    pub fn in_neighbors(&self, id: NodeId) -> impl Iterator<Item = Adjacency> + '_ {
        self.in_adjacency
            .get(id.index())
            .into_iter()
            .flatten()
            .copied()
            .filter(|a| self.contains_edge(a.edge))
    }

    /// Degree (out-degree for directed graphs).
    pub fn degree(&self, id: NodeId) -> usize {
        self.neighbors(id).count()
    }

    /// Removes an edge, returning its weight.
    pub fn remove_edge(&mut self, id: EdgeId) -> Option<E> {
        let record = self.edges.get_mut(id.index())?.take()?;
        self.live_edges -= 1;
        // Adjacency entries are filtered lazily by `contains_edge`; compact
        // the source list eagerly to keep iteration costs bounded.
        self.adjacency[record.source.index()].retain(|a| a.edge != id);
        match self.direction {
            Direction::Undirected => {
                self.adjacency[record.target.index()].retain(|a| a.edge != id);
            }
            Direction::Directed => {
                self.in_adjacency[record.target.index()].retain(|a| a.edge != id);
            }
        }
        Some(record.weight)
    }

    /// Removes a node and all incident edges, returning the node weight.
    pub fn remove_node(&mut self, id: NodeId) -> Option<N> {
        let weight = self.nodes.get_mut(id.index())?.take()?;
        self.live_nodes -= 1;
        let incident: Vec<EdgeId> = self
            .edges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                e.as_ref()
                    .and_then(|r| (r.source == id || r.target == id).then_some(EdgeId(i as u32)))
            })
            .collect();
        for e in incident {
            self.remove_edge(e);
        }
        self.adjacency[id.index()].clear();
        self.in_adjacency[id.index()].clear();
        Some(weight)
    }

    /// Finds the first edge connecting `a` and `b` (in either direction for
    /// undirected graphs).
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.neighbors(a)
            .find(|adj| adj.node == b)
            .map(|adj| adj.edge)
    }

    /// All edges connecting `a` and `b`.
    pub fn edges_between(&self, a: NodeId, b: NodeId) -> Vec<EdgeId> {
        self.neighbors(a)
            .filter(|adj| adj.node == b)
            .map(|adj| adj.edge)
            .collect()
    }
}

impl<N: Clone, E: Clone> Graph<N, E> {
    /// The subgraph induced by the nodes satisfying `keep`: those nodes and
    /// every edge whose endpoints both survive. Node/edge ids are **not**
    /// preserved; the returned map translates old node ids to new ones.
    /// (This is the graph-level analogue of the UPSIM filter semantics.)
    pub fn induced_subgraph(
        &self,
        keep: impl Fn(NodeId, &N) -> bool,
    ) -> (Graph<N, E>, std::collections::HashMap<NodeId, NodeId>) {
        let mut out = Graph::new(self.direction);
        let mut map = std::collections::HashMap::new();
        for (id, weight) in self.nodes() {
            if keep(id, weight) {
                map.insert(id, out.add_node(weight.clone()));
            }
        }
        for (_, s, t, weight) in self.edges() {
            if let (Some(&ns), Some(&nt)) = (map.get(&s), map.get(&t)) {
                out.add_edge(ns, nt, weight.clone());
            }
        }
        (out, map)
    }
}

impl<N, E> Graph<N, E>
where
    N: PartialEq,
{
    /// Finds a node by its weight (linear scan; fine for model-sized graphs).
    pub fn find_node(&self, weight: &N) -> Option<NodeId> {
        self.nodes().find(|(_, w)| *w == weight).map(|(id, _)| id)
    }
}

impl<N, E> Default for Graph<N, E> {
    fn default() -> Self {
        Self::new_undirected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph<&'static str, u32>, [NodeId; 3]) {
        let mut g = Graph::new_undirected();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 2);
        g.add_edge(c, a, 3);
        (g, [a, b, c])
    }

    #[test]
    fn add_and_query_nodes_edges() {
        let (g, [a, b, c]) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.node(a), Some(&"a"));
        assert_eq!(g.degree(b), 2);
        let e = g.find_edge(a, b).unwrap();
        assert_eq!(g.edge(e), Some(&1));
        assert_eq!(g.opposite(e, a), Some(b));
        assert_eq!(g.opposite(e, c), None);
    }

    #[test]
    fn undirected_adjacency_is_symmetric() {
        let (g, [a, b, _]) = triangle();
        assert!(g.neighbors(a).any(|adj| adj.node == b));
        assert!(g.neighbors(b).any(|adj| adj.node == a));
    }

    #[test]
    fn directed_adjacency_is_one_way() {
        let mut g: Graph<(), ()> = Graph::new_directed();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        assert_eq!(g.neighbors(a).count(), 1);
        assert_eq!(g.neighbors(b).count(), 0);
        assert_eq!(g.in_neighbors(b).count(), 1);
    }

    #[test]
    fn remove_edge_keeps_other_ids_stable() {
        let (mut g, [a, b, c]) = triangle();
        let ab = g.find_edge(a, b).unwrap();
        let bc = g.find_edge(b, c).unwrap();
        assert_eq!(g.remove_edge(ab), Some(1));
        assert!(!g.contains_edge(ab));
        assert!(g.contains_edge(bc));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.remove_edge(ab), None, "double removal is a no-op");
    }

    #[test]
    fn remove_node_removes_incident_edges() {
        let (mut g, [a, b, c]) = triangle();
        assert_eq!(g.remove_node(b), Some("b"));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.find_edge(a, c).is_some());
        assert!(g.find_edge(a, b).is_none());
    }

    #[test]
    fn parallel_edges_supported() {
        let mut g: Graph<&str, u32> = Graph::new_undirected();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        assert_eq!(g.edges_between(a, b).len(), 2);
        assert_eq!(g.degree(a), 2);
    }

    #[test]
    fn self_loop_counted_once_in_adjacency() {
        let mut g: Graph<&str, ()> = Graph::new_undirected();
        let a = g.add_node("a");
        g.add_edge(a, a, ());
        assert_eq!(g.neighbors(a).count(), 1);
    }

    #[test]
    fn find_node_by_weight() {
        let (g, [_, b, _]) = triangle();
        assert_eq!(g.find_node(&"b"), Some(b));
        assert_eq!(g.find_node(&"zz"), None);
    }

    #[test]
    #[should_panic(expected = "not a live node")]
    fn edge_to_dead_node_panics() {
        let (mut g, [a, b, _]) = triangle();
        g.remove_node(b);
        g.add_edge(a, b, 9);
    }

    #[test]
    fn induced_subgraph_filters_nodes_and_edges() {
        let (g, [a, b, c]) = triangle();
        let (sub, map) = g.induced_subgraph(|id, _| id != b);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1, "only the a-c edge survives");
        assert!(map.contains_key(&a) && map.contains_key(&c) && !map.contains_key(&b));
        let (na, nc) = (map[&a], map[&c]);
        assert!(sub.find_edge(na, nc).is_some());
        assert_eq!(sub.node(na), Some(&"a"));
    }

    #[test]
    fn induced_subgraph_of_everything_is_isomorphic() {
        let (g, _) = triangle();
        let (sub, _) = g.induced_subgraph(|_, _| true);
        assert_eq!(sub.node_count(), g.node_count());
        assert_eq!(sub.edge_count(), g.edge_count());
    }

    #[test]
    fn adjacency_slice_holds_only_live_edges() {
        let (mut g, [a, b, c]) = triangle();
        let ab = g.find_edge(a, b).unwrap();
        g.remove_edge(ab);
        assert!(g.adjacency_slice(a).iter().all(|adj| adj.edge != ab));
        assert_eq!(g.adjacency_slice(a).len(), 1);
        g.remove_node(c);
        assert!(g.adjacency_slice(a).is_empty());
        assert!(g.adjacency_slice(NodeId::from_index(99)).is_empty());
        let entries: Vec<_> = g.adjacency_slice(b).to_vec();
        assert!(entries.iter().all(|adj| g.contains_edge(adj.edge)));
    }

    #[test]
    fn iteration_skips_tombstones() {
        let (mut g, [a, _, _]) = triangle();
        g.remove_node(a);
        assert_eq!(g.node_ids().count(), 2);
        assert_eq!(g.edge_ids().count(), 1);
        assert_eq!(g.nodes().count(), 2);
    }
}
