//! # ict-graph — graph engine for service-network analysis
//!
//! The UPSIM methodology (Dittrich et al., IPPS 2013, Sec. V-D) treats the
//! ICT infrastructure as a graph and discovers **all simple paths** between a
//! service requester and provider with a depth-first search that tracks the
//! current path to avoid live-locks in cycles. This crate is that engine,
//! built from scratch (no petgraph), plus everything the surrounding
//! analyses need:
//!
//! * [`Graph`] — an index-stable, directed or undirected multigraph with
//!   arbitrary node/edge weights and O(1) removal tombstones,
//! * [`paths`] — the paper's all-simple-paths DFS (iterator-based, with
//!   depth/count caps), path counting, and minimal path sets,
//! * [`parallel`] — a crossbeam-based parallel enumeration of the same path
//!   set (prefix splitting + per-worker sequential DFS), identical in
//!   content to the sequential result,
//! * [`prune`] — biconnected components and the block-cut tree, used to
//!   restrict path discovery to the blocks between a source and target
//!   (exactly the nodes that can lie on some simple path),
//! * [`shortest`] — BFS/Dijkstra shortest paths and Yen's k-shortest,
//! * [`connectivity`] — components, bridges, articulation points,
//! * [`cutsets`] — minimal cut sets (via path-set hitting sets) and
//!   max-flow min-cut,
//! * [`seriesparallel`] — two-terminal series-parallel reduction (used by
//!   the UPSIM → reliability-block-diagram transformation),
//! * [`metrics`], [`dot`] — graph statistics and Graphviz export.
//!
//! ```
//! use ict_graph::{Graph, paths::simple_paths};
//!
//! let mut g = Graph::new_undirected();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! let c = g.add_node("c");
//! g.add_edge(a, b, ());
//! g.add_edge(b, c, ());
//! g.add_edge(a, c, ());
//! let found: Vec<_> = simple_paths(&g, a, c, Default::default()).collect();
//! assert_eq!(found.len(), 2); // a-c and a-b-c
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capacity;
pub mod connectivity;
pub mod cutsets;
pub mod disjoint;
pub mod dot;
pub mod graph;
pub mod metrics;
pub mod parallel;
pub mod paths;
pub mod prune;
pub mod seriesparallel;
pub mod shortest;
pub mod traversal;

pub use graph::{Direction, EdgeId, Graph, NodeId};
pub use paths::{Path, PathLimits};
