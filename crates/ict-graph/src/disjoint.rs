//! Node-disjoint path analysis (Menger).
//!
//! The number of internally node-disjoint requester→provider routes is the
//! sharpest redundancy measure of a user's infrastructure: by Menger's
//! theorem it equals the minimum node cut, i.e. how many *simultaneous*
//! component failures the pair is guaranteed to survive. The UPSIM
//! visualization question of the paper ("which ICT components can be the
//! cause", Sec. VII) has this as its quantitative companion.
//!
//! Implementation: standard node splitting — every vertex `v` becomes
//! `v_in → v_out` with unit capacity (terminals get infinite capacity),
//! every undirected edge `{u,v}` becomes `u_out → v_in` and `v_out → u_in`
//! — followed by unit-capacity max flow (Edmonds–Karp on an explicit
//! residual adjacency list).

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// The maximum number of internally node-disjoint paths between `source`
/// and `target` (∞ would be the answer for `source == target`; this
/// returns `usize::MAX` in that degenerate case). Parallel edges and a
/// direct `source—target` link each contribute one disjoint route.
pub fn max_disjoint_paths<N, E>(graph: &Graph<N, E>, source: NodeId, target: NodeId) -> usize {
    if source == target {
        return usize::MAX;
    }
    if !graph.contains_node(source) || !graph.contains_node(target) {
        return 0;
    }
    // Split nodes: index 2v = v_in, 2v+1 = v_out.
    let n = graph.node_capacity();
    let node_in = |v: NodeId| 2 * v.index();
    let node_out = |v: NodeId| 2 * v.index() + 1;

    // Arc list with residual capacities; adjacency as arc indices.
    let mut arcs: Vec<(usize, usize, i64)> = Vec::new(); // (from, to, cap)
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); 2 * n];
    let push_arc = |arcs: &mut Vec<(usize, usize, i64)>,
                    adjacency: &mut Vec<Vec<usize>>,
                    from: usize,
                    to: usize,
                    cap: i64| {
        adjacency[from].push(arcs.len());
        arcs.push((from, to, cap));
        adjacency[to].push(arcs.len());
        arcs.push((to, from, 0)); // residual twin
    };

    const BIG: i64 = i64::MAX / 4;
    for v in graph.node_ids() {
        let cap = if v == source || v == target { BIG } else { 1 };
        push_arc(&mut arcs, &mut adjacency, node_in(v), node_out(v), cap);
    }
    for (_, a, b, _) in graph.edges() {
        if a == b {
            continue;
        }
        push_arc(&mut arcs, &mut adjacency, node_out(a), node_in(b), 1);
        if !graph.is_directed() {
            push_arc(&mut arcs, &mut adjacency, node_out(b), node_in(a), 1);
        }
    }

    let (s, t) = (node_out(source), node_in(target));
    let mut flow = 0usize;
    loop {
        // BFS over residual arcs.
        let mut parent_arc: Vec<Option<usize>> = vec![None; 2 * n];
        let mut visited = vec![false; 2 * n];
        visited[s] = true;
        let mut queue = VecDeque::from([s]);
        'bfs: while let Some(u) = queue.pop_front() {
            for &ai in &adjacency[u] {
                let (from, to, cap) = arcs[ai];
                if from != u || cap <= 0 || visited[to] {
                    continue;
                }
                visited[to] = true;
                parent_arc[to] = Some(ai);
                if to == t {
                    break 'bfs;
                }
                queue.push_back(to);
            }
        }
        if !visited[t] {
            return flow;
        }
        // Augment by 1 (all internal capacities are units).
        let mut cur = t;
        while cur != s {
            let ai = parent_arc[cur].expect("path recorded");
            arcs[ai].2 -= 1;
            arcs[ai ^ 1].2 += 1;
            cur = arcs[ai].0;
        }
        flow += 1;
    }
}

/// Menger cross-check helper: `true` if removing any set of fewer than
/// `k` internal nodes leaves the pair connected (exhaustive — only for
/// small graphs / tests).
pub fn survives_any_failures<N: Clone, E: Clone>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    failures: usize,
) -> bool {
    let internal: Vec<NodeId> = graph
        .node_ids()
        .filter(|&v| v != source && v != target)
        .collect();
    fn combos(items: &[NodeId], k: usize) -> Vec<Vec<NodeId>> {
        if k == 0 {
            return vec![Vec::new()];
        }
        let mut out = Vec::new();
        for (i, &first) in items.iter().enumerate() {
            for mut rest in combos(&items[i + 1..], k - 1) {
                rest.insert(0, first);
                out.push(rest);
            }
        }
        out
    }
    for kill in combos(&internal, failures) {
        let mut g = graph.clone();
        for v in kill {
            g.remove_node(v);
        }
        if !crate::traversal::is_reachable(&g, source, target) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn diamond() -> (Graph<u32, ()>, [NodeId; 4]) {
        let mut g = Graph::new_undirected();
        let s = g.add_node(0);
        let a = g.add_node(1);
        let b = g.add_node(2);
        let t = g.add_node(3);
        g.add_edge(s, a, ());
        g.add_edge(a, t, ());
        g.add_edge(s, b, ());
        g.add_edge(b, t, ());
        (g, [s, a, b, t])
    }

    #[test]
    fn diamond_has_two_disjoint_paths() {
        let (g, [s, _, _, t]) = diamond();
        assert_eq!(max_disjoint_paths(&g, s, t), 2);
    }

    #[test]
    fn chain_has_one() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let ids: Vec<_> = (0..4).map(|i| g.add_node(i)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        assert_eq!(max_disjoint_paths(&g, ids[0], ids[3]), 1);
    }

    #[test]
    fn shared_middle_node_limits_to_one() {
        // s - m - t with two parallel edges each side: edge-disjoint 2,
        // node-disjoint 1.
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let s = g.add_node(0);
        let m = g.add_node(1);
        let t = g.add_node(2);
        g.add_edge(s, m, ());
        g.add_edge(s, m, ());
        g.add_edge(m, t, ());
        g.add_edge(m, t, ());
        assert_eq!(max_disjoint_paths(&g, s, t), 1);
    }

    #[test]
    fn direct_link_adds_a_route() {
        let (mut g, [s, _, _, t]) = diamond();
        g.add_edge(s, t, ());
        assert_eq!(max_disjoint_paths(&g, s, t), 3);
    }

    #[test]
    fn complete_graph_menger() {
        // K_n: n-1 internally disjoint routes between any pair (the direct
        // edge + n-2 two-hop routes).
        for n in 3..=6 {
            let mut g: Graph<usize, ()> = Graph::new_undirected();
            let ids: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    g.add_edge(ids[i], ids[j], ());
                }
            }
            assert_eq!(max_disjoint_paths(&g, ids[0], ids[1]), n - 1, "K_{n}");
        }
    }

    #[test]
    fn unreachable_and_degenerate() {
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let s = g.add_node(0);
        let t = g.add_node(1);
        assert_eq!(max_disjoint_paths(&g, s, t), 0);
        assert_eq!(max_disjoint_paths(&g, s, s), usize::MAX);
    }

    #[test]
    fn menger_theorem_on_small_graphs() {
        // disjoint count k ⇒ survives any k-1 internal failures but not
        // every set of k failures.
        let (g, [s, _, _, t]) = diamond();
        let k = max_disjoint_paths(&g, s, t);
        assert!(survives_any_failures(&g, s, t, k - 1));
        assert!(!survives_any_failures(&g, s, t, k));
    }

    #[test]
    fn directed_graphs_respect_orientation() {
        let mut g: Graph<u32, ()> = Graph::new_directed();
        let s = g.add_node(0);
        let a = g.add_node(1);
        let t = g.add_node(2);
        g.add_edge(s, a, ());
        g.add_edge(a, t, ());
        g.add_edge(t, s, ()); // wrong direction, no extra route
        assert_eq!(max_disjoint_paths(&g, s, t), 1);
    }
}
