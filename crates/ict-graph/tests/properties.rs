//! Property-based tests for the graph engine: the paper's path-discovery
//! semantics (all simple paths, no livelock) checked against brute force and
//! against the parallel implementation on random graphs.

use ict_graph::parallel::{parallel_simple_paths, ParallelOptions};
use ict_graph::paths::{all_simple_paths, minimal_path_sets, Path, PathLimits};
use ict_graph::prune::pruned_simple_paths;
use ict_graph::{Graph, NodeId};
use proptest::prelude::*;

/// A random undirected graph on `n` nodes given by an edge list.
fn graph_strategy() -> impl Strategy<Value = (Graph<usize, ()>, Vec<NodeId>)> {
    (2usize..8).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..=max_edges.min(12)).prop_map(move |pairs| {
            let mut g = Graph::new_undirected();
            let ids: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(ids[a], ids[b], ());
                }
            }
            (g, ids)
        })
    })
}

/// Brute-force simple-path enumeration by recursion over node sequences.
fn brute_force_paths(g: &Graph<usize, ()>, s: NodeId, t: NodeId) -> Vec<Path> {
    fn recurse(
        g: &Graph<usize, ()>,
        t: NodeId,
        nodes: &mut Vec<NodeId>,
        edges: &mut Vec<ict_graph::EdgeId>,
        out: &mut Vec<Path>,
    ) {
        let head = *nodes.last().unwrap();
        if head == t {
            out.push(Path {
                nodes: nodes.clone(),
                edges: edges.clone(),
            });
            return;
        }
        for adj in g.neighbors(head) {
            if nodes.contains(&adj.node) {
                continue;
            }
            nodes.push(adj.node);
            edges.push(adj.edge);
            recurse(g, t, nodes, edges, out);
            nodes.pop();
            edges.pop();
        }
    }
    let mut out = Vec::new();
    if s == t {
        return vec![Path {
            nodes: vec![s],
            edges: vec![],
        }];
    }
    recurse(g, t, &mut vec![s], &mut Vec::new(), &mut out);
    out
}

/// A dense random multigraph: every vertex pair carries 0..=2 parallel
/// edges, so most of the graph is one big biconnected component — the
/// worst case for pruning (it must degrade to a no-op, not lose paths).
fn dense_graph_strategy() -> impl Strategy<Value = (Graph<usize, ()>, Vec<NodeId>)> {
    (3usize..7).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(0usize..=2, pairs..=pairs).prop_map(move |multiplicity| {
            let mut g = Graph::new_undirected();
            let ids: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    for _ in 0..multiplicity[k] {
                        g.add_edge(ids[i], ids[j], ());
                    }
                    k += 1;
                }
            }
            (g, ids)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn enumeration_matches_brute_force((g, ids) in graph_strategy()) {
        let s = ids[0];
        let t = ids[ids.len() - 1];
        let mut found = all_simple_paths(&g, s, t);
        let mut brute = brute_force_paths(&g, s, t);
        found.sort();
        brute.sort();
        brute.dedup(); // brute force may revisit via parallel edges identically? (it cannot, edge ids differ)
        prop_assert_eq!(found, brute);
    }

    #[test]
    fn every_path_is_simple_and_valid((g, ids) in graph_strategy()) {
        let s = ids[0];
        let t = ids[ids.len() - 1];
        for p in all_simple_paths(&g, s, t) {
            prop_assert!(p.validate(&g));
            prop_assert_eq!(p.source(), s);
            prop_assert_eq!(p.target(), t);
        }
    }

    #[test]
    fn parallel_equals_sequential((g, ids) in graph_strategy(), threads in 1usize..5) {
        let s = ids[0];
        let t = ids[ids.len() - 1];
        let mut seq = all_simple_paths(&g, s, t);
        seq.sort();
        let par = parallel_simple_paths(&g, s, t, ParallelOptions { threads, ..Default::default() });
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn minimal_path_sets_are_antichain_and_cover((g, ids) in graph_strategy()) {
        let s = ids[0];
        let t = ids[ids.len() - 1];
        let sets = minimal_path_sets(&g, s, t);
        // Antichain: no set strictly contains another.
        for (i, a) in sets.iter().enumerate() {
            for (j, b) in sets.iter().enumerate() {
                if i != j {
                    let a_subset_b = a.iter().all(|x| b.binary_search(x).is_ok());
                    prop_assert!(!a_subset_b || a.len() == b.len());
                }
            }
        }
        // Cover: there is a path iff there is a minimal path set.
        let has_path = !all_simple_paths(&g, s, t).is_empty();
        prop_assert_eq!(!sets.is_empty(), has_path);
    }

    #[test]
    fn pruned_equals_unpruned_on_random_graphs((g, ids) in graph_strategy(), si in 0usize..8, ti in 0usize..8) {
        let s = ids[si % ids.len()];
        let t = ids[ti % ids.len()];
        let mut unpruned = all_simple_paths(&g, s, t);
        let mut pruned = pruned_simple_paths(&g, s, t, PathLimits::unlimited());
        prop_assert_eq!(&pruned, &unpruned, "DFS emission order must be preserved");
        pruned.sort();
        unpruned.sort();
        prop_assert_eq!(pruned, unpruned);
    }

    #[test]
    fn pruned_equals_unpruned_on_dense_multigraphs((g, ids) in dense_graph_strategy()) {
        let s = ids[0];
        let t = ids[ids.len() - 1];
        let unpruned = all_simple_paths(&g, s, t);
        let pruned = pruned_simple_paths(&g, s, t, PathLimits::unlimited());
        prop_assert_eq!(pruned, unpruned);
    }

    #[test]
    fn pruned_capped_is_a_dfs_prefix((g, ids) in graph_strategy(), cap in 0usize..6) {
        // Pruning never reorders the DFS, so a capped pruned run returns
        // exactly the first `cap` paths of the unpruned enumeration.
        let s = ids[0];
        let t = ids[ids.len() - 1];
        let all = all_simple_paths(&g, s, t);
        let capped = pruned_simple_paths(&g, s, t, PathLimits::unlimited().with_max_paths(cap));
        let want = &all[..cap.min(all.len())];
        prop_assert_eq!(capped.as_slice(), want);
    }

    #[test]
    fn parallel_capped_preserves_cap_semantics((g, ids) in dense_graph_strategy(), cap in 1usize..9, threads in 1usize..4) {
        let s = ids[0];
        let t = ids[ids.len() - 1];
        let full = all_simple_paths(&g, s, t);
        let capped = parallel_simple_paths(&g, s, t, ParallelOptions {
            threads,
            limits: PathLimits::unlimited().with_max_paths(cap),
            ..Default::default()
        });
        // Deterministic count, sorted distinct output, and every returned
        // path is a genuine member of the full enumeration.
        prop_assert_eq!(capped.len(), cap.min(full.len()));
        for w in capped.windows(2) {
            prop_assert!(w[0] < w[1], "output must be sorted and duplicate-free");
        }
        let universe: std::collections::HashSet<_> = full.into_iter().collect();
        for p in &capped {
            prop_assert!(p.validate(&g));
            prop_assert!(universe.contains(p));
        }
    }

    #[test]
    fn critical_elements_are_really_critical((g, ids) in graph_strategy()) {
        let crit = ict_graph::connectivity::critical_elements(&g);
        let base = ict_graph::connectivity::connected_components(&g).len();
        for e in crit.bridges {
            let mut g2 = g.clone();
            g2.remove_edge(e);
            prop_assert!(ict_graph::connectivity::connected_components(&g2).len() > base);
        }
        for n in crit.articulation_points {
            let mut g2 = g.clone();
            g2.remove_node(n);
            // Removing the node also removes it from the census; critical
            // means the rest splits into more parts than just losing `n`.
            // Removing an articulation point splits its component into at
            // least two, so the total count strictly increases.
            let after = ict_graph::connectivity::connected_components(&g2).len();
            prop_assert!(after > base, "articulation {n:?} did not disconnect");
        }
        let _ = ids;
    }
}
