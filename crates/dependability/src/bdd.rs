//! A reduced ordered binary decision diagram (ROBDD) engine.
//!
//! Two-terminal availability with shared components (the USI core switches
//! sit on *every* path) cannot be computed by multiplying path
//! probabilities — the events are dependent. The textbook exact method is
//! to build the structure function as a BDD and evaluate it bottom-up with
//! Shannon expansion: `P(f) = p·P(f|x=1) + (1−p)·P(f|x=0)`, which is linear
//! in the BDD size.
//!
//! The engine is a classic hash-consed ROBDD with an ITE-based apply,
//! natural variable order (callers control ordering by choosing variable
//! indices), restriction, and memoized probability evaluation.

use std::collections::HashMap;

/// Reference to a BDD node (or terminal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

const FALSE: BddRef = BddRef(0);
const TRUE: BddRef = BddRef(1);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    low: BddRef,
    high: BddRef,
}

/// The BDD manager: owns the node table and operation caches.
#[derive(Debug, Default)]
pub struct Bdd {
    /// nodes[0], nodes[1] are dummies for the terminals.
    nodes: Vec<Node>,
    unique: HashMap<Node, BddRef>,
    and_cache: HashMap<(BddRef, BddRef), BddRef>,
    or_cache: HashMap<(BddRef, BddRef), BddRef>,
}

impl Bdd {
    /// Creates an empty manager.
    pub fn new() -> Self {
        let dummy = Node {
            var: u32::MAX,
            low: FALSE,
            high: FALSE,
        };
        Bdd {
            nodes: vec![dummy, dummy],
            unique: HashMap::new(),
            and_cache: HashMap::new(),
            or_cache: HashMap::new(),
        }
    }

    /// The FALSE terminal.
    pub fn zero(&self) -> BddRef {
        FALSE
    }

    /// The TRUE terminal.
    pub fn one(&self) -> BddRef {
        TRUE
    }

    /// `true` if `r` is a terminal.
    fn is_terminal(r: BddRef) -> bool {
        r.0 < 2
    }

    fn var_of(&self, r: BddRef) -> u32 {
        if Self::is_terminal(r) {
            u32::MAX
        } else {
            self.nodes[r.0 as usize].var
        }
    }

    /// Number of live nodes (terminals excluded).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 2
    }

    fn mk(&mut self, var: u32, low: BddRef, high: BddRef) -> BddRef {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    /// The single-variable function `x_var`.
    pub fn var(&mut self, var: u32) -> BddRef {
        self.mk(var, FALSE, TRUE)
    }

    /// Conjunction.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> BddRef {
        if a == FALSE || b == FALSE {
            return FALSE;
        }
        if a == TRUE {
            return b;
        }
        if b == TRUE || a == b {
            return a;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = self.and_cache.get(&key) {
            return r;
        }
        let (va, vb) = (self.var_of(a), self.var_of(b));
        let top = va.min(vb);
        let (a0, a1) = self.cofactors(a, top);
        let (b0, b1) = self.cofactors(b, top);
        let low = self.and(a0, b0);
        let high = self.and(a1, b1);
        let r = self.mk(top, low, high);
        self.and_cache.insert(key, r);
        r
    }

    /// Disjunction.
    pub fn or(&mut self, a: BddRef, b: BddRef) -> BddRef {
        if a == TRUE || b == TRUE {
            return TRUE;
        }
        if a == FALSE {
            return b;
        }
        if b == FALSE || a == b {
            return a;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = self.or_cache.get(&key) {
            return r;
        }
        let (va, vb) = (self.var_of(a), self.var_of(b));
        let top = va.min(vb);
        let (a0, a1) = self.cofactors(a, top);
        let (b0, b1) = self.cofactors(b, top);
        let low = self.or(a0, b0);
        let high = self.or(a1, b1);
        let r = self.mk(top, low, high);
        self.or_cache.insert(key, r);
        r
    }

    /// Negation (computed structurally; no complement edges).
    pub fn not(&mut self, a: BddRef) -> BddRef {
        if a == TRUE {
            return FALSE;
        }
        if a == FALSE {
            return TRUE;
        }
        let node = self.nodes[a.0 as usize];
        let low = self.not(node.low);
        let high = self.not(node.high);
        self.mk(node.var, low, high)
    }

    fn cofactors(&self, r: BddRef, var: u32) -> (BddRef, BddRef) {
        if Self::is_terminal(r) || self.var_of(r) != var {
            (r, r)
        } else {
            let n = self.nodes[r.0 as usize];
            (n.low, n.high)
        }
    }

    /// Restriction `f|x_var = value`.
    pub fn restrict(&mut self, r: BddRef, var: u32, value: bool) -> BddRef {
        if Self::is_terminal(r) {
            return r;
        }
        let node = self.nodes[r.0 as usize];
        if node.var > var {
            return r; // var does not occur (ordered BDD)
        }
        if node.var == var {
            return if value { node.high } else { node.low };
        }
        let low = self.restrict(node.low, var, value);
        let high = self.restrict(node.high, var, value);
        self.mk(node.var, low, high)
    }

    /// Probability that the function is TRUE when variable `i` is TRUE
    /// independently with probability `probs[i]`. Linear in BDD size.
    pub fn probability(&self, r: BddRef, probs: &[f64]) -> f64 {
        let mut memo: HashMap<BddRef, f64> = HashMap::new();
        self.prob_rec(r, probs, &mut memo)
    }

    fn prob_rec(&self, r: BddRef, probs: &[f64], memo: &mut HashMap<BddRef, f64>) -> f64 {
        if r == TRUE {
            return 1.0;
        }
        if r == FALSE {
            return 0.0;
        }
        if let Some(&p) = memo.get(&r) {
            return p;
        }
        let node = self.nodes[r.0 as usize];
        let p_var = probs[node.var as usize];
        let p = p_var * self.prob_rec(node.high, probs, memo)
            + (1.0 - p_var) * self.prob_rec(node.low, probs, memo);
        memo.insert(r, p);
        p
    }

    /// Builds the structure function of a path-set system: OR over path
    /// sets of the AND of their variables. Variables are component indices.
    pub fn from_path_sets(&mut self, path_sets: &[Vec<usize>]) -> BddRef {
        let mut result = FALSE;
        for set in path_sets {
            // AND variables in descending index order — building from the
            // bottom of the order keeps intermediate BDDs small.
            let mut sorted: Vec<usize> = set.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let mut conj = TRUE;
            for &v in &sorted {
                let lit = self.var(v as u32);
                conj = self.and(conj, lit);
            }
            result = self.or(result, conj);
        }
        result
    }

    /// Evaluates the function under a full assignment (for brute-force
    /// cross-checks in tests).
    pub fn evaluate(&self, r: BddRef, assignment: &[bool]) -> bool {
        let mut cur = r;
        while !Self::is_terminal(cur) {
            let node = self.nodes[cur.0 as usize];
            cur = if assignment[node.var as usize] {
                node.high
            } else {
                node.low
            };
        }
        cur == TRUE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_variables() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        assert_ne!(x, bdd.zero());
        assert_eq!(bdd.var(0), x, "hash-consing");
        assert_eq!(bdd.node_count(), 1);
    }

    #[test]
    fn boolean_algebra_laws() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let one = bdd.one();
        let zero = bdd.zero();
        assert_eq!(bdd.and(x, one), x);
        assert_eq!(bdd.and(x, zero), zero);
        assert_eq!(bdd.or(x, zero), x);
        assert_eq!(bdd.or(x, one), one);
        let xy = bdd.and(x, y);
        let yx = bdd.and(y, x);
        assert_eq!(xy, yx, "canonicity");
        let not_x = bdd.not(x);
        assert_eq!(bdd.and(x, not_x), zero);
        assert_eq!(bdd.or(x, not_x), one);
        let double_neg = bdd.not(not_x);
        assert_eq!(double_neg, x);
    }

    #[test]
    fn probability_of_series_and_parallel() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let series = bdd.and(x, y);
        let parallel = bdd.or(x, y);
        let p = [0.9, 0.8];
        assert!((bdd.probability(series, &p) - 0.72).abs() < 1e-12);
        assert!((bdd.probability(parallel, &p) - 0.98).abs() < 1e-12);
    }

    #[test]
    fn shared_component_dependence_handled() {
        // Two paths {0,1} and {0,2}: P = p0 * (1 - (1-p1)(1-p2)), NOT
        // the naive 1 - (1-p0p1)(1-p0p2).
        let mut bdd = Bdd::new();
        let f = bdd.from_path_sets(&[vec![0, 1], vec![0, 2]]);
        let p = [0.9, 0.8, 0.7];
        let exact = 0.9 * (1.0 - 0.2 * 0.3);
        assert!((bdd.probability(f, &p) - exact).abs() < 1e-12);
        let naive = 1.0 - (1.0 - 0.72) * (1.0 - 0.63);
        assert!(
            (bdd.probability(f, &p) - naive).abs() > 1e-3,
            "naive differs"
        );
    }

    #[test]
    fn restriction_fixes_variables() {
        let mut bdd = Bdd::new();
        let f = bdd.from_path_sets(&[vec![0, 1], vec![2]]);
        let f_no2 = bdd.restrict(f, 2, false);
        let p = [0.5, 0.5, 0.9];
        assert!((bdd.probability(f_no2, &p) - 0.25).abs() < 1e-12);
        let f_yes2 = bdd.restrict(f, 2, true);
        assert_eq!(f_yes2, bdd.one());
    }

    #[test]
    fn probability_matches_brute_force_enumeration() {
        let mut bdd = Bdd::new();
        let sets = vec![vec![0, 1], vec![1, 2], vec![0, 3], vec![2, 3]];
        let f = bdd.from_path_sets(&sets);
        let p = [0.9, 0.85, 0.7, 0.6];
        let mut expected = 0.0;
        for mask in 0..16u32 {
            let assign: Vec<bool> = (0..4).map(|i| mask >> i & 1 == 1).collect();
            let up = sets.iter().any(|s| s.iter().all(|&v| assign[v]));
            if up {
                let weight: f64 = (0..4)
                    .map(|i| if assign[i] { p[i] } else { 1.0 - p[i] })
                    .product();
                expected += weight;
            }
            assert_eq!(bdd.evaluate(f, &assign), up);
        }
        assert!((bdd.probability(f, &p) - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_path_set_means_always_up() {
        // A trivial path (requester == provider) is the empty conjunction.
        let mut bdd = Bdd::new();
        let f = bdd.from_path_sets(&[vec![]]);
        assert_eq!(f, bdd.one());
    }

    #[test]
    fn no_paths_means_never_up() {
        let mut bdd = Bdd::new();
        let f = bdd.from_path_sets(&[]);
        assert_eq!(f, bdd.zero());
    }
}
