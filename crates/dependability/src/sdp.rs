//! Sum of disjoint products (SDP) over minimal path sets.
//!
//! The classical network-reliability alternative to BDDs (Abraham's
//! single-variable disjointing): `P(∪ Pᵢ)` is rewritten as a sum of
//! mutually disjoint products of literals, each evaluable as a simple
//! product. Exact for shared components; complexity depends on path-set
//! structure (the BDD engine usually scales better — experiment E8 compares
//! them and they must agree to machine precision).

/// A disjoint product term: conjunction of positive and negated variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Term {
    /// Variables that must be up (sorted).
    pub pos: Vec<usize>,
    /// Variables that must be down (sorted).
    pub neg: Vec<usize>,
}

impl Term {
    /// Term probability over pre-gathered up/down probabilities (`q[i]`
    /// must be `1 − p[i]`). The complements are hoisted out by the caller:
    /// every term revisits the same variables, so the hot evaluation loop
    /// is two iterator products over gathered values instead of
    /// re-deriving the complement per literal.
    fn probability(&self, p: &[f64], q: &[f64]) -> f64 {
        let up: f64 = self.pos.iter().map(|&i| p[i]).product();
        let down: f64 = self.neg.iter().map(|&i| q[i]).product();
        up * down
    }
}

/// Computes the disjoint products of `P(∪ path_sets)`.
///
/// Path sets are sorted by cardinality first (Abraham's heuristic keeps the
/// term count down). The returned terms are pairwise disjoint and their
/// probability sum equals the union probability.
pub fn disjoint_products(path_sets: &[Vec<usize>]) -> Vec<Term> {
    // Normalize without cloning every set: already strictly-sorted sets
    // (the common case — `minimize` emits them) are borrowed, only the
    // rest are copied and sorted. The cardinality sort compares in place
    // instead of materializing `(len, clone)` keys.
    let mut paths: Vec<std::borrow::Cow<[usize]>> = path_sets
        .iter()
        .map(|s| {
            if s.windows(2).all(|w| w[0] < w[1]) {
                std::borrow::Cow::Borrowed(s.as_slice())
            } else {
                let mut v = s.clone();
                v.sort_unstable();
                v.dedup();
                std::borrow::Cow::Owned(v)
            }
        })
        .collect();
    paths.sort_unstable_by(|a, b| {
        a.len()
            .cmp(&b.len())
            .then_with(|| a.as_ref().cmp(b.as_ref()))
    });
    paths.dedup();

    let mut terms: Vec<Term> = Vec::new();
    for (i, path) in paths.iter().enumerate() {
        // Start from Pᵢ and conjoin ¬P₀ … ¬Pᵢ₋₁, splitting into disjoint
        // sub-terms as needed.
        let mut current = vec![Term {
            pos: path.to_vec(),
            neg: Vec::new(),
        }];
        for prev in &paths[..i] {
            let mut next = Vec::new();
            for term in current {
                // D = prev \ term.pos — the variables of prev not already
                // forced up by the term.
                let d: Vec<usize> = prev
                    .iter()
                    .copied()
                    .filter(|v| term.pos.binary_search(v).is_err())
                    .collect();
                if d.is_empty() {
                    // term ⊆ prev ⇒ term ∧ ¬prev = ∅: drop.
                    continue;
                }
                if d.iter().any(|v| term.neg.binary_search(v).is_ok()) {
                    // ¬prev already guaranteed by an existing negation.
                    next.push(term);
                    continue;
                }
                // term ∧ ¬prev = Σ_k term ∧ d₁…d_{k-1} ∧ ¬d_k (disjoint).
                for k in 0..d.len() {
                    let mut pos = term.pos.clone();
                    pos.extend_from_slice(&d[..k]);
                    pos.sort_unstable();
                    let mut neg = term.neg.clone();
                    neg.push(d[k]);
                    neg.sort_unstable();
                    next.push(Term { pos, neg });
                }
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        terms.extend(current);
    }
    terms
}

/// Exact union probability via SDP.
pub fn union_probability(path_sets: &[Vec<usize>], p: &[f64]) -> f64 {
    let terms = disjoint_products(path_sets);
    let q: Vec<f64> = p.iter().map(|&pi| 1.0 - pi).collect();
    terms.iter().map(|t| t.probability(p, &q)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdd::Bdd;

    fn brute_force(path_sets: &[Vec<usize>], p: &[f64]) -> f64 {
        let n = p.len();
        let mut total = 0.0;
        for mask in 0..(1u32 << n) {
            let assign: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            if path_sets.iter().any(|s| s.iter().all(|&v| assign[v])) {
                total += (0..n)
                    .map(|i| if assign[i] { p[i] } else { 1.0 - p[i] })
                    .product::<f64>();
            }
        }
        total
    }

    #[test]
    fn single_path_is_product() {
        let p = [0.9, 0.8];
        assert!((union_probability(&[vec![0, 1]], &p) - 0.72).abs() < 1e-12);
    }

    #[test]
    fn disjoint_paths_match_inclusion_exclusion() {
        let p = [0.9, 0.8, 0.7, 0.6];
        let sets = vec![vec![0, 1], vec![2, 3]];
        let expected = 0.72 + 0.42 - 0.72 * 0.42;
        assert!((union_probability(&sets, &p) - expected).abs() < 1e-12);
    }

    #[test]
    fn shared_components_exact() {
        let p = [0.9, 0.8, 0.7];
        let sets = vec![vec![0, 1], vec![0, 2]];
        let expected = 0.9 * (1.0 - 0.2 * 0.3);
        assert!((union_probability(&sets, &p) - expected).abs() < 1e-12);
    }

    #[test]
    fn terms_are_pairwise_disjoint() {
        let sets = vec![vec![0, 1], vec![1, 2], vec![0, 3], vec![2, 3]];
        let terms = disjoint_products(&sets);
        // Two terms are disjoint iff some variable is positive in one and
        // negative in the other.
        for (i, a) in terms.iter().enumerate() {
            for b in terms.iter().skip(i + 1) {
                let conflict = a.pos.iter().any(|v| b.neg.binary_search(v).is_ok())
                    || b.pos.iter().any(|v| a.neg.binary_search(v).is_ok());
                assert!(conflict, "terms {a:?} and {b:?} overlap");
            }
        }
    }

    #[test]
    fn matches_brute_force_and_bdd_on_random_systems() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2013);
        for trial in 0..25 {
            let n = rng.random_range(2..7usize);
            let k = rng.random_range(1..5usize);
            let sets: Vec<Vec<usize>> = (0..k)
                .map(|_| {
                    let len = rng.random_range(1..=n);
                    let mut s: Vec<usize> = (0..n).collect();
                    for i in (1..s.len()).rev() {
                        let j = rng.random_range(0..=i);
                        s.swap(i, j);
                    }
                    s.truncate(len);
                    s.sort_unstable();
                    s
                })
                .collect();
            let p: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..0.99)).collect();
            let exact = brute_force(&sets, &p);
            let via_sdp = union_probability(&sets, &p);
            assert!(
                (via_sdp - exact).abs() < 1e-10,
                "trial {trial}: sdp {via_sdp} vs {exact}"
            );
            let mut bdd = Bdd::new();
            let f = bdd.from_path_sets(&sets);
            let via_bdd = bdd.probability(f, &p);
            assert!((via_bdd - exact).abs() < 1e-10, "trial {trial}: bdd");
        }
    }

    #[test]
    fn duplicate_and_superset_paths_handled() {
        let p = [0.9, 0.8];
        let sets = vec![vec![0], vec![0], vec![0, 1]];
        assert!((union_probability(&sets, &p) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(union_probability(&[], &[0.5]), 0.0);
        // A trivial (empty) path means the union is certain.
        assert_eq!(union_probability(&[vec![]], &[0.5]), 1.0);
    }
}
