//! # dependability — user-perceived service dependability analysis
//!
//! The paper's Sec. VII outlook: the generated UPSIM *"can be used to
//! facilitate analysis of various user-perceived dependability properties
//! [...] by transforming the UPSIM to a reliability block diagram (RBD) or
//! fault-tree (FT), in which entities correspond to components of the
//! UPSIM. The availability for individual components can be calculated
//! using the component attributes MTBF and MTTR (Formula 1)."* The
//! companion paper \[20\] ("Model-driven evaluation of user-perceived service
//! availability") carries out that transformation; this crate implements
//! both, plus the exact engines an RBD cannot cover:
//!
//! * [`availability`] — Formula 1 (exact steady-state and the paper's
//!   printed first-order approximation) and redundancy expansion,
//! * [`rbd`] — reliability block diagrams (series / parallel / k-of-n),
//! * [`faulttree`] — fault trees (AND / OR / k-of-n gates) with the
//!   RBD-dual construction,
//! * [`bdd`] — a reduced ordered binary decision diagram engine for exact
//!   evaluation of structure functions with **shared components** (the USI
//!   core appears in every path — naive products are wrong there),
//! * [`sdp`] — sum of disjoint products over minimal path sets (Abraham's
//!   disjointing), the classical alternative to BDDs,
//! * [`montecarlo`] — parallel Monte-Carlo estimation with confidence
//!   intervals (crossbeam worker fan-out), used to cross-validate the
//!   analytic engines,
//! * [`mcprog`] — compiled bit-sliced Monte-Carlo programs: path sets
//!   flattened into a word program evaluating 64 trials per `u64` with
//!   counter-based draws (worker-count-invariant estimates),
//! * [`transform`] — the UPSIM → availability-model transformation: builds
//!   a [`transform::ServiceAvailabilityModel`] from an object diagram, the
//!   class diagram it instantiates and the service mapping pairs, and
//!   evaluates user-perceived steady-state service availability through any
//!   of the engines,
//! * [`importance`] — Birnbaum / criticality / Fussell-Vesely component
//!   importance, identifying *"which ICT components can be the cause"*
//!   of service problems (Sec. VII).

#![warn(missing_docs)]
// `deny`, not `forbid`: the one sanctioned exception is the CPU-feature
// dispatch of the wide Monte-Carlo packing kernel in [`mcprog`], which
// needs `#[target_feature]` instantiations behind a runtime-detected
// function pointer. Everything else in the crate stays safe.
#![deny(unsafe_code)]

pub mod availability;
pub mod bdd;
pub mod cutsets;
pub mod downtime;
pub mod faulttree;
pub mod importance;
pub mod mcprog;
pub mod montecarlo;
pub mod params;
pub mod performance;
pub mod perturb;
pub mod rbd;
pub mod sdp;
pub mod sensitivity;
pub mod transform;
pub mod transient;

pub use availability::{paper_approximation, steady_state, with_redundancy, ComponentAvailability};
pub use bdd::{Bdd, BddRef};
pub use mcprog::{
    mc_result_from, steal_chunk, wide_block_count, McProgram, McScratch, PosteriorAccum,
    PosteriorSampler,
};
pub use params::{
    overlay_model, refine, ComponentObservations, GammaPosterior, NonMonotoneTimestamp,
    ParamEstimator, ParamSource, PosteriorComponent,
};
pub use rbd::Block;
pub use transform::{AnalysisOptions, ServiceAvailabilityModel};
