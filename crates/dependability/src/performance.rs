//! User-perceived performance properties (paper Sec. VII outlook:
//! *"other service dependability properties, not exclusively steady-state
//! availability, can be evaluated"* — performability \[6\] is cited
//! explicitly).
//!
//! The network profile's `Communication.throughput` attribute (Fig. 7)
//! feeds two classic capacity analyses over the user-perceived
//! infrastructure:
//!
//! * **widest path** — the best single-route throughput a pair can get,
//! * **max flow** — the aggregate capacity if traffic may split,
//!
//! plus the hop count of the shortest discovered route as a latency proxy.
//! All atomic services execute in sequence (Fig. 10), so the end-to-end
//! session throughput is the minimum over its pairs, and the latency proxy
//! the sum.

use ict_graph::capacity::{max_flow_capacity, widest_path};
use upsim_core::infrastructure::Infrastructure;
use upsim_core::pipeline::UpsimRun;

/// Performance figures of one mapping pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairPerformance {
    /// The atomic service.
    pub atomic_service: String,
    /// Requester component.
    pub requester: String,
    /// Provider component.
    pub provider: String,
    /// Best single-route throughput (Mbit/s); `f64::INFINITY` when
    /// requester == provider.
    pub widest_throughput: f64,
    /// Aggregate (max-flow) throughput (Mbit/s).
    pub max_flow_throughput: f64,
    /// Hop count of the shortest discovered path.
    pub min_hops: usize,
}

/// Service-level performance report.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceReport {
    /// Per-pair figures, in service execution order.
    pub pairs: Vec<PairPerformance>,
    /// Sequential session throughput: the minimum widest-path throughput
    /// over all pairs.
    pub session_throughput: f64,
    /// Latency proxy: total hops across the sequential execution.
    pub total_hops: usize,
}

/// Analyzes the run's discovered pairs against the infrastructure's link
/// throughput attributes.
///
/// Links without a `throughput` attribute are treated as zero-capacity
/// (they cannot carry service traffic) — the builder API always sets one,
/// so this only affects hand-assembled models.
pub fn analyze(infrastructure: &Infrastructure, run: &UpsimRun) -> PerformanceReport {
    let (graph, index) = infrastructure.to_graph();
    let throughput = |edge: ict_graph::EdgeId| -> f64 {
        let link_index = *graph.edge(edge).expect("live edge");
        infrastructure
            .link_attr(link_index, "throughput")
            .unwrap_or(0.0)
    };

    let mut pairs = Vec::with_capacity(run.discovered.len());
    for discovered in &run.discovered {
        let source = index[&discovered.pair.requester];
        let target = index[&discovered.pair.provider];
        let widest = widest_path(&graph, source, target, throughput)
            .map(|(_, w)| w)
            .unwrap_or(0.0);
        let flow = if source == target {
            f64::INFINITY
        } else {
            max_flow_capacity(&graph, source, target, throughput)
        };
        let min_hops = discovered
            .interned()
            .iter()
            .map(|p| p.len().saturating_sub(1))
            .min()
            .unwrap_or(0);
        pairs.push(PairPerformance {
            atomic_service: discovered.pair.atomic_service.clone(),
            requester: discovered.pair.requester.clone(),
            provider: discovered.pair.provider.clone(),
            widest_throughput: widest,
            max_flow_throughput: flow,
            min_hops,
        });
    }
    let session_throughput = pairs
        .iter()
        .map(|p| p.widest_throughput)
        .fold(f64::INFINITY, f64::min);
    let total_hops = pairs.iter().map(|p| p.min_hops).sum();
    PerformanceReport {
        pairs,
        session_throughput: if session_throughput.is_infinite() && run.discovered.is_empty() {
            0.0
        } else {
            session_throughput
        },
        total_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upsim_core::infrastructure::{DeviceClassSpec, LinkClassSpec};
    use upsim_core::mapping::{ServiceMapping, ServiceMappingPair};
    use upsim_core::pipeline::UpsimPipeline;
    use upsim_core::service::CompositeService;

    /// t1 -(1000)- fastsw -(1000)- srv  and  t1 -(100)- slowsw -(100)- srv
    fn fixture() -> (Infrastructure, UpsimRun) {
        let mut infra = Infrastructure::new("perf");
        infra
            .define_device_class(DeviceClassSpec::client("C", 3000.0, 24.0))
            .unwrap();
        infra
            .define_device_class(DeviceClassSpec::switch("Fast", 100_000.0, 0.5))
            .unwrap();
        infra
            .define_device_class(DeviceClassSpec::switch("Slow", 100_000.0, 0.5))
            .unwrap();
        infra
            .define_device_class(DeviceClassSpec::server("S", 60_000.0, 0.1))
            .unwrap();
        for (n, c) in [
            ("t1", "C"),
            ("fastsw", "Fast"),
            ("slowsw", "Slow"),
            ("srv", "S"),
        ] {
            infra.add_device(n, c).unwrap();
        }
        infra.connect("t1", "fastsw").unwrap();
        infra.connect("fastsw", "srv").unwrap();
        infra.set_default_link(LinkClassSpec {
            throughput: 100.0,
            ..Default::default()
        });
        infra.connect("t1", "slowsw").unwrap();
        infra.connect("slowsw", "srv").unwrap();

        let svc = CompositeService::sequential("f", &["up", "down"]).unwrap();
        let mapping = ServiceMapping::new()
            .with(ServiceMappingPair::new("up", "t1", "srv"))
            .with(ServiceMappingPair::new("down", "srv", "t1"));
        let mut pipeline = UpsimPipeline::new(infra.clone(), svc, mapping).unwrap();
        let run = pipeline.run().unwrap();
        (infra, run)
    }

    #[test]
    fn widest_route_is_the_gigabit_path() {
        let (infra, run) = fixture();
        let report = analyze(&infra, &run);
        assert_eq!(report.pairs.len(), 2);
        assert!((report.pairs[0].widest_throughput - 1000.0).abs() < 1e-9);
        // Aggregate: both routes together.
        assert!((report.pairs[0].max_flow_throughput - 1100.0).abs() < 1e-9);
        assert_eq!(report.pairs[0].min_hops, 2);
    }

    #[test]
    fn session_throughput_is_min_over_pairs() {
        let (infra, run) = fixture();
        let report = analyze(&infra, &run);
        assert!((report.session_throughput - 1000.0).abs() < 1e-9);
        assert_eq!(report.total_hops, 4);
    }

    #[test]
    fn colocated_pair_is_unbounded() {
        let mut infra = Infrastructure::new("local");
        infra
            .define_device_class(DeviceClassSpec::server("S", 60_000.0, 0.1))
            .unwrap();
        infra.add_device("srv", "S").unwrap();
        let svc = CompositeService::sequential("f", &["log"]).unwrap();
        let mapping = ServiceMapping::new().with(ServiceMappingPair::new("log", "srv", "srv"));
        let mut pipeline = UpsimPipeline::new(infra.clone(), svc, mapping).unwrap();
        let run = pipeline.run().unwrap();
        let report = analyze(&infra, &run);
        assert!(report.pairs[0].widest_throughput.is_infinite());
        assert_eq!(report.pairs[0].min_hops, 0);
    }

    #[test]
    fn usi_printing_session_is_gigabit() {
        let infra = netgen::usi::usi_infrastructure();
        let mut pipeline = UpsimPipeline::new(
            infra.clone(),
            netgen::usi::printing_service(),
            netgen::usi::table_i_mapping(),
        )
        .unwrap();
        let run = pipeline.run().unwrap();
        let report = analyze(&infra, &run);
        // All USI links are defaulted to 1000 Mbit/s.
        assert!((report.session_throughput - 1000.0).abs() < 1e-9);
        // The client is single-homed, so its aggregate is access-link bound.
        assert!((report.pairs[0].max_flow_throughput - 1000.0).abs() < 1e-9);
        // Between the dual-homed distribution switches the redundant core
        // doubles the aggregate capacity.
        let (graph, index) = infra.to_graph();
        let throughput = |edge: ict_graph::EdgeId| {
            infra
                .link_attr(*graph.edge(edge).unwrap(), "throughput")
                .unwrap_or(0.0)
        };
        let core_flow =
            ict_graph::capacity::max_flow_capacity(&graph, index["d1"], index["d4"], throughput);
        assert!(
            (core_flow - 2000.0).abs() < 1e-9,
            "core aggregate: {core_flow}"
        );
    }
}
