//! Component importance measures.
//!
//! Paper Sec. VII: the UPSIM "provides a quick overview on which ICT
//! components can be the cause" of service problems. Importance measures
//! quantify that overview. All three classics are computed from the exact
//! service BDD by variable restriction:
//!
//! * **Birnbaum** `B_i = A(x_i=1) − A(x_i=0)` — sensitivity of service
//!   availability to component `i`,
//! * **criticality** `C_i = B_i · q_i / U` — probability that `i` is down
//!   *and* critical, given the service is down (`q_i = 1 − p_i`,
//!   `U = 1 − A`),
//! * **Fussell-Vesely** `FV_i = (U − U(x_i=1)) / U` — fraction of service
//!   unavailability involving the failure of `i`.

use crate::bdd::Bdd;
use crate::transform::ServiceAvailabilityModel;

/// Importance measures of one component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentImportance {
    /// Component name.
    pub name: String,
    /// Component availability.
    pub availability: f64,
    /// Birnbaum importance.
    pub birnbaum: f64,
    /// Criticality importance.
    pub criticality: f64,
    /// Fussell-Vesely importance.
    pub fussell_vesely: f64,
}

/// Computes importance measures for every component of the model, sorted by
/// descending Birnbaum importance (ties broken by name for determinism).
pub fn component_importance(model: &ServiceAvailabilityModel) -> Vec<ComponentImportance> {
    let mut bdd = Bdd::new();
    let mut f = bdd.one();
    for system in &model.systems {
        let pair = bdd.from_path_sets(&system.path_sets);
        f = bdd.and(f, pair);
    }
    let probs = model.availability_vector();
    let a = bdd.probability(f, &probs);
    let u = 1.0 - a;

    let mut out = Vec::with_capacity(model.components.len());
    for (i, component) in model.components.iter().enumerate() {
        let up = bdd.restrict(f, i as u32, true);
        let down = bdd.restrict(f, i as u32, false);
        let a_up = bdd.probability(up, &probs);
        let a_down = bdd.probability(down, &probs);
        let birnbaum = a_up - a_down;
        let q = 1.0 - component.availability;
        let criticality = if u > 0.0 { birnbaum * q / u } else { 0.0 };
        let fussell_vesely = if u > 0.0 { (u - (1.0 - a_up)) / u } else { 0.0 };
        out.push(ComponentImportance {
            name: component.name.clone(),
            availability: component.availability,
            birnbaum,
            criticality,
            fussell_vesely,
        });
    }
    out.sort_by(|x, y| {
        y.birnbaum
            .partial_cmp(&x.birnbaum)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.name.cmp(&y.name))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::availability::ComponentAvailability;
    use crate::transform::PairSystem;

    /// Hand-built model: series t - m - s (single path), p = .9/.8/.7.
    fn series_model() -> ServiceAvailabilityModel {
        let comp = |name: &str, a: f64| ComponentAvailability {
            name: name.into(),
            mtbf: 0.0,
            mttr: 0.0,
            redundant: 0,
            availability: a,
            source: crate::params::ParamSource::Authored,
        };
        ServiceAvailabilityModel {
            components: vec![comp("t", 0.9), comp("m", 0.8), comp("s", 0.7)],
            systems: vec![PairSystem {
                atomic_service: "as".into(),
                requester: "t".into(),
                provider: "s".into(),
                path_sets: vec![vec![0, 1, 2]],
            }],
        }
    }

    #[test]
    fn birnbaum_of_series_is_product_of_others() {
        let imps = component_importance(&series_model());
        let by_name = |n: &str| imps.iter().find(|i| i.name == n).unwrap();
        assert!((by_name("t").birnbaum - 0.8 * 0.7).abs() < 1e-12);
        assert!((by_name("m").birnbaum - 0.9 * 0.7).abs() < 1e-12);
        assert!((by_name("s").birnbaum - 0.9 * 0.8).abs() < 1e-12);
        // Least available component is most critical in a series system.
        assert_eq!(imps[0].name, "s");
    }

    #[test]
    fn criticality_and_fv_bounded_and_ordered() {
        let imps = component_importance(&series_model());
        for i in &imps {
            assert!((0.0..=1.0 + 1e-12).contains(&i.criticality), "{i:?}");
            assert!((0.0..=1.0 + 1e-12).contains(&i.fussell_vesely), "{i:?}");
        }
        // In a pure series system, FV_i = q_i-involvement fraction; the
        // least available part dominates.
        let fv_s = imps.iter().find(|i| i.name == "s").unwrap().fussell_vesely;
        let fv_t = imps.iter().find(|i| i.name == "t").unwrap().fussell_vesely;
        assert!(fv_s > fv_t);
    }

    #[test]
    fn redundant_branch_has_lower_importance() {
        // t - (a|b) - s: the redundant switches a, b matter far less than
        // the terminals.
        let comp = |name: &str, a: f64| ComponentAvailability {
            name: name.into(),
            mtbf: 0.0,
            mttr: 0.0,
            redundant: 0,
            availability: a,
            source: crate::params::ParamSource::Authored,
        };
        let model = ServiceAvailabilityModel {
            components: vec![
                comp("t", 0.9),
                comp("a", 0.9),
                comp("b", 0.9),
                comp("s", 0.9),
            ],
            systems: vec![PairSystem {
                atomic_service: "as".into(),
                requester: "t".into(),
                provider: "s".into(),
                path_sets: vec![vec![0, 1, 3], vec![0, 2, 3]],
            }],
        };
        let imps = component_importance(&model);
        let b = |n: &str| imps.iter().find(|i| i.name == n).unwrap().birnbaum;
        assert!(b("t") > b("a"));
        assert!(b("s") > b("b"));
        assert!((b("a") - b("b")).abs() < 1e-12, "symmetric branches");
    }

    #[test]
    fn perfect_system_has_zero_relative_measures() {
        let comp = |name: &str| ComponentAvailability {
            name: name.into(),
            mtbf: 0.0,
            mttr: 0.0,
            redundant: 0,
            availability: 1.0,
            source: crate::params::ParamSource::Authored,
        };
        let model = ServiceAvailabilityModel {
            components: vec![comp("x")],
            systems: vec![PairSystem {
                atomic_service: "as".into(),
                requester: "x".into(),
                provider: "x".into(),
                path_sets: vec![vec![0]],
            }],
        };
        let imps = component_importance(&model);
        assert_eq!(imps[0].criticality, 0.0);
        assert_eq!(imps[0].fussell_vesely, 0.0);
        assert!((imps[0].birnbaum - 1.0).abs() < 1e-12);
    }
}
