//! Reliability block diagrams (RBDs).
//!
//! Paper Sec. VII: *"Such analysis can be performed by transforming the
//! UPSIM to a reliability block diagram (RBD) or fault-tree (FT), in which
//! entities correspond to components of the UPSIM."* An RBD is valid only
//! when every component appears in exactly one block — evaluation assumes
//! block independence. [`Block::validate_single_use`] checks that; for
//! UPSIMs with shared components the `bdd`/`sdp` engines are exact instead.

use crate::bdd::Bdd;
use ict_graph::seriesparallel::SpTree;

/// A reliability block over component indices.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// A single component (index into the availability vector).
    Unit(usize),
    /// All sub-blocks must work.
    Series(Vec<Block>),
    /// At least one sub-block must work.
    Parallel(Vec<Block>),
    /// At least `k` of the sub-blocks must work (identical independent
    /// positions).
    KOfN {
        /// Minimum number of working sub-blocks.
        k: usize,
        /// The sub-blocks.
        blocks: Vec<Block>,
    },
}

impl Block {
    /// Availability of the block given per-component availabilities,
    /// assuming all components are independent and used once.
    pub fn availability(&self, component: &[f64]) -> f64 {
        match self {
            Block::Unit(i) => component[*i],
            Block::Series(blocks) => blocks.iter().map(|b| b.availability(component)).product(),
            Block::Parallel(blocks) => {
                1.0 - blocks
                    .iter()
                    .map(|b| 1.0 - b.availability(component))
                    .product::<f64>()
            }
            Block::KOfN { k, blocks } => {
                // Exact via dynamic programming over "number of working
                // sub-blocks": O(n²).
                let probs: Vec<f64> = blocks.iter().map(|b| b.availability(component)).collect();
                let mut dist = vec![0.0; probs.len() + 1];
                dist[0] = 1.0;
                for (i, &p) in probs.iter().enumerate() {
                    for w in (0..=i).rev() {
                        dist[w + 1] += dist[w] * p;
                        dist[w] *= 1.0 - p;
                    }
                }
                dist.iter().skip(*k).sum()
            }
        }
    }

    /// All component indices referenced by the block (with repetition).
    pub fn components(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<usize>) {
        match self {
            Block::Unit(i) => out.push(*i),
            Block::Series(bs) | Block::Parallel(bs) | Block::KOfN { blocks: bs, .. } => {
                bs.iter().for_each(|b| b.collect(out))
            }
        }
    }

    /// `true` when every component occurs at most once — the precondition
    /// for [`Block::availability`] to be exact.
    pub fn validate_single_use(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.components().into_iter().all(|c| seen.insert(c))
    }

    /// Renders the block structure in the conventional inline RBD notation:
    /// series as `—`-joined, parallel as `( … | … )`, k-of-n as
    /// `k-of-n( … )`, units as `[name]`.
    pub fn render(&self, name: &impl Fn(usize) -> String) -> String {
        match self {
            Block::Unit(i) => format!("[{}]", name(*i)),
            Block::Series(bs) => bs
                .iter()
                .map(|b| b.render(name))
                .collect::<Vec<_>>()
                .join("\u{2014}"),
            Block::Parallel(bs) => format!(
                "({})",
                bs.iter()
                    .map(|b| b.render(name))
                    .collect::<Vec<_>>()
                    .join(" | ")
            ),
            Block::KOfN { k, blocks } => format!(
                "{k}-of-{}({})",
                blocks.len(),
                blocks
                    .iter()
                    .map(|b| b.render(name))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
    }

    /// Builds an RBD from a series-parallel decomposition
    /// ([`ict_graph::seriesparallel::reduce`]), mapping each original edge
    /// through `component_of`.
    pub fn from_sp_tree(
        tree: &SpTree,
        component_of: &impl Fn(ict_graph::EdgeId) -> usize,
    ) -> Block {
        match tree {
            SpTree::Edge(e) => Block::Unit(component_of(*e)),
            SpTree::Series(ts) => Block::Series(
                ts.iter()
                    .map(|t| Block::from_sp_tree(t, component_of))
                    .collect(),
            ),
            SpTree::Parallel(ts) => Block::Parallel(
                ts.iter()
                    .map(|t| Block::from_sp_tree(t, component_of))
                    .collect(),
            ),
        }
    }

    /// Encodes the block's structure function into a BDD (for
    /// cross-validation and for blocks that violate single-use).
    pub fn to_bdd(&self, bdd: &mut Bdd) -> crate::bdd::BddRef {
        match self {
            Block::Unit(i) => bdd.var(*i as u32),
            Block::Series(bs) => {
                let mut acc = bdd.one();
                for b in bs {
                    let sub = b.to_bdd(bdd);
                    acc = bdd.and(acc, sub);
                }
                acc
            }
            Block::Parallel(bs) => {
                let mut acc = bdd.zero();
                for b in bs {
                    let sub = b.to_bdd(bdd);
                    acc = bdd.or(acc, sub);
                }
                acc
            }
            Block::KOfN { k, blocks } => {
                // OR over all subsets of size >= k is exponential; encode
                // recursively: f(i, need) = need==0 ? 1 : i==n ? 0 :
                //   blocks[i]·f(i+1, need-1) + ¬blocks[i]·f(i+1, need)
                fn rec(
                    bdd: &mut Bdd,
                    blocks: &[Block],
                    i: usize,
                    need: usize,
                ) -> crate::bdd::BddRef {
                    if need == 0 {
                        return bdd.one();
                    }
                    if i == blocks.len() || blocks.len() - i < need {
                        return bdd.zero();
                    }
                    let b = blocks[i].to_bdd(bdd);
                    let with = rec(bdd, blocks, i + 1, need - 1);
                    let without = rec(bdd, blocks, i + 1, need);
                    let not_b = bdd.not(b);
                    let hi = bdd.and(b, with);
                    let lo = bdd.and(not_b, without);
                    bdd.or(hi, lo)
                }
                rec(bdd, blocks, 0, *k)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_parallel_evaluation() {
        let comp = [0.9, 0.8, 0.7];
        let series = Block::Series(vec![Block::Unit(0), Block::Unit(1)]);
        assert!((series.availability(&comp) - 0.72).abs() < 1e-12);
        let parallel = Block::Parallel(vec![Block::Unit(0), Block::Unit(1)]);
        assert!((parallel.availability(&comp) - 0.98).abs() < 1e-12);
        let nested = Block::Series(vec![
            Block::Unit(2),
            Block::Parallel(vec![Block::Unit(0), Block::Unit(1)]),
        ]);
        assert!((nested.availability(&comp) - 0.7 * 0.98).abs() < 1e-12);
    }

    #[test]
    fn k_of_n_matches_binomial() {
        let comp = [0.9; 3];
        let two_of_three = Block::KOfN {
            k: 2,
            blocks: vec![Block::Unit(0), Block::Unit(1), Block::Unit(2)],
        };
        // 3·p²(1-p) + p³
        let expected = 3.0 * 0.81 * 0.1 + 0.729;
        assert!((two_of_three.availability(&comp) - expected).abs() < 1e-12);
    }

    #[test]
    fn k_of_n_edge_cases() {
        let comp = [0.9, 0.8];
        let zero_of_two = Block::KOfN {
            k: 0,
            blocks: vec![Block::Unit(0), Block::Unit(1)],
        };
        assert!((zero_of_two.availability(&comp) - 1.0).abs() < 1e-12);
        let all = Block::KOfN {
            k: 2,
            blocks: vec![Block::Unit(0), Block::Unit(1)],
        };
        assert!(
            (all.availability(&comp) - 0.72).abs() < 1e-12,
            "k=n is series"
        );
    }

    #[test]
    fn single_use_validation() {
        let ok = Block::Series(vec![Block::Unit(0), Block::Unit(1)]);
        assert!(ok.validate_single_use());
        let shared = Block::Parallel(vec![
            Block::Series(vec![Block::Unit(0), Block::Unit(1)]),
            Block::Series(vec![Block::Unit(0), Block::Unit(2)]),
        ]);
        assert!(!shared.validate_single_use());
    }

    #[test]
    fn bdd_agrees_with_analytic_when_single_use() {
        let comp = [0.9, 0.8, 0.7, 0.6];
        let block = Block::Parallel(vec![
            Block::Series(vec![Block::Unit(0), Block::Unit(1)]),
            Block::Series(vec![Block::Unit(2), Block::Unit(3)]),
        ]);
        let mut bdd = Bdd::new();
        let f = block.to_bdd(&mut bdd);
        assert!((bdd.probability(f, &comp) - block.availability(&comp)).abs() < 1e-12);
    }

    #[test]
    fn bdd_is_exact_when_components_shared() {
        let comp = [0.9, 0.8, 0.7];
        let shared = Block::Parallel(vec![
            Block::Series(vec![Block::Unit(0), Block::Unit(1)]),
            Block::Series(vec![Block::Unit(0), Block::Unit(2)]),
        ]);
        let mut bdd = Bdd::new();
        let f = shared.to_bdd(&mut bdd);
        let exact = 0.9 * (1.0 - 0.2 * 0.3);
        assert!((bdd.probability(f, &comp) - exact).abs() < 1e-12);
        // The naive RBD formula over-counts.
        assert!((shared.availability(&comp) - exact).abs() > 1e-3);
    }

    #[test]
    fn k_of_n_bdd_agrees() {
        let comp = [0.9, 0.85, 0.8, 0.75];
        let block = Block::KOfN {
            k: 3,
            blocks: (0..4).map(Block::Unit).collect(),
        };
        let mut bdd = Bdd::new();
        let f = block.to_bdd(&mut bdd);
        assert!((bdd.probability(f, &comp) - block.availability(&comp)).abs() < 1e-12);
    }

    #[test]
    fn render_produces_conventional_notation() {
        let names = ["t1", "a", "b", "srv"];
        let name = |i: usize| names[i].to_string();
        let block = Block::Series(vec![
            Block::Unit(0),
            Block::Parallel(vec![Block::Unit(1), Block::Unit(2)]),
            Block::Unit(3),
        ]);
        assert_eq!(block.render(&name), "[t1]\u{2014}([a] | [b])\u{2014}[srv]");
        let kofn = Block::KOfN {
            k: 2,
            blocks: vec![Block::Unit(1), Block::Unit(2), Block::Unit(3)],
        };
        assert_eq!(kofn.render(&name), "2-of-3([a], [b], [srv])");
    }

    #[test]
    fn from_sp_tree_maps_edges() {
        use ict_graph::seriesparallel::{reduce, SpReduction};
        use ict_graph::Graph;
        // diamond s-(a|b)-t as edges 0..4
        let mut g: Graph<u32, ()> = Graph::new_undirected();
        let s = g.add_node(0);
        let a = g.add_node(1);
        let b = g.add_node(2);
        let t = g.add_node(3);
        g.add_edge(s, a, ());
        g.add_edge(a, t, ());
        g.add_edge(s, b, ());
        g.add_edge(b, t, ());
        let SpReduction::SeriesParallel(tree) = reduce(&g, s, t) else {
            panic!("diamond is SP")
        };
        let block = Block::from_sp_tree(&tree, &|e| e.index());
        assert!(block.validate_single_use());
        let comp = [0.9, 0.9, 0.8, 0.8];
        let expected = 1.0 - (1.0 - 0.81) * (1.0 - 0.64);
        assert!((block.availability(&comp) - expected).abs() < 1e-12);
    }
}
