//! Minimal cut sets of a service and the fault tree built from them.
//!
//! Paper Sec. VII proposes fault trees as one analysis target of the UPSIM.
//! The canonical construction goes through **minimal cut sets**: minimal
//! component sets whose joint failure takes the service down. For a
//! coherent system they are exactly the minimal transversals (hitting sets)
//! of the minimal path sets — computed here with Berge's incremental
//! algorithm over generic variable indices. The resulting fault tree
//! (OR over cut sets of AND over failures) evaluates — via the exact BDD
//! engine — to precisely the system unavailability.

use crate::faulttree::Gate;

/// Caps for the worst-case-exponential enumeration.
#[derive(Debug, Clone, Copy)]
pub struct CutLimits {
    /// Maximum cut-set cardinality kept.
    pub max_size: usize,
    /// Maximum number of cut sets kept.
    pub max_cuts: usize,
}

impl Default for CutLimits {
    fn default() -> Self {
        CutLimits {
            max_size: 16,
            max_cuts: 100_000,
        }
    }
}

/// Removes non-minimal (superset) sets; input sets must be sorted.
fn minimize(mut sets: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    sets.sort_by_key(|s| (s.len(), s.clone()));
    sets.dedup();
    let mut out: Vec<Vec<usize>> = Vec::new();
    'outer: for cand in sets {
        for kept in &out {
            if kept.iter().all(|v| cand.binary_search(v).is_ok()) {
                continue 'outer;
            }
        }
        out.push(cand);
    }
    out
}

/// Minimal transversals of a family of sets (Berge's algorithm): every
/// returned set intersects every input set and is minimal with that
/// property. Input sets need not be sorted; empty input families yield no
/// transversals, and a family containing the empty set has none either
/// (nothing can hit ∅).
pub fn minimal_transversals(sets: &[Vec<usize>], limits: CutLimits) -> Vec<Vec<usize>> {
    let mut family: Vec<Vec<usize>> = sets
        .iter()
        .map(|s| {
            let mut v = s.clone();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    family.sort_by_key(Vec::len);
    if family.is_empty() || family.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    let mut transversals: Vec<Vec<usize>> = family[0].iter().map(|&v| vec![v]).collect();
    for set in &family[1..] {
        let mut next: Vec<Vec<usize>> = Vec::new();
        for t in &transversals {
            if t.iter().any(|v| set.binary_search(v).is_ok()) {
                next.push(t.clone());
            } else {
                for &v in set {
                    let mut extended = t.clone();
                    match extended.binary_search(&v) {
                        Ok(_) => {}
                        Err(pos) => extended.insert(pos, v),
                    }
                    if extended.len() <= limits.max_size {
                        next.push(extended);
                    }
                }
            }
        }
        transversals = minimize(next);
        transversals.truncate(limits.max_cuts);
    }
    transversals
}

/// Minimal cut sets of a path-set system: the minimal transversals of its
/// minimal path sets.
pub fn minimal_cut_sets(path_sets: &[Vec<usize>], limits: CutLimits) -> Vec<Vec<usize>> {
    minimal_transversals(path_sets, limits)
}

/// The fault tree over the minimal cut sets: the top event (service
/// failure) is the OR over cut sets of the AND of their component
/// failures. Repeated basic events are expected — evaluation must go
/// through [`Gate::top_event_probability`] (BDD-exact).
pub fn fault_tree_from_cut_sets(cut_sets: &[Vec<usize>]) -> Gate {
    Gate::Or(
        cut_sets
            .iter()
            .map(|cut| Gate::And(cut.iter().map(|&v| Gate::Basic(v)).collect()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdd::Bdd;

    #[test]
    fn series_system_cuts_are_singletons() {
        // One path {0,1,2}: every component is a singleton cut.
        let cuts = minimal_cut_sets(&[vec![0, 1, 2]], CutLimits::default());
        assert_eq!(cuts, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn parallel_system_cut_is_the_full_set() {
        // Paths {0} and {1}: only cutting both disconnects.
        let cuts = minimal_cut_sets(&[vec![0], vec![1]], CutLimits::default());
        assert_eq!(cuts, vec![vec![0, 1]]);
    }

    #[test]
    fn bridge_like_sharing() {
        // Paths {0,1}, {0,2}: cuts {0} and {1,2}.
        let mut cuts = minimal_cut_sets(&[vec![0, 1], vec![0, 2]], CutLimits::default());
        cuts.sort();
        assert_eq!(cuts, vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn no_paths_means_no_cuts() {
        assert!(minimal_cut_sets(&[], CutLimits::default()).is_empty());
        // A trivial (empty) path can never be cut.
        assert!(minimal_cut_sets(&[vec![]], CutLimits::default()).is_empty());
    }

    #[test]
    fn fault_tree_unavailability_matches_bdd_availability() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let n = rng.random_range(2..6usize);
            let k = rng.random_range(1..4usize);
            let path_sets: Vec<Vec<usize>> = (0..k)
                .map(|_| {
                    let len = rng.random_range(1..=n);
                    let mut s: Vec<usize> = (0..n).collect();
                    for i in (1..s.len()).rev() {
                        let j = rng.random_range(0..=i);
                        s.swap(i, j);
                    }
                    s.truncate(len);
                    s
                })
                .collect();
            let p: Vec<f64> = (0..n).map(|_| rng.random_range(0.1..0.95)).collect();

            let mut bdd = Bdd::new();
            let f = bdd.from_path_sets(&path_sets);
            let availability = bdd.probability(f, &p);

            let cuts = minimal_cut_sets(&path_sets, CutLimits::default());
            let ft = fault_tree_from_cut_sets(&cuts);
            let unavailability = ft.top_event_probability(&p);
            assert!(
                (availability + unavailability - 1.0).abs() < 1e-10,
                "A={availability}, U={unavailability}, paths={path_sets:?}, cuts={cuts:?}"
            );
        }
    }

    #[test]
    fn transversals_are_minimal_and_hitting() {
        let sets = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let ts = minimal_transversals(&sets, CutLimits::default());
        for t in &ts {
            // hitting
            for s in &sets {
                assert!(s.iter().any(|v| t.contains(v)), "{t:?} misses {s:?}");
            }
            // minimal: dropping any element un-hits some set
            for drop in t {
                let reduced: Vec<usize> = t.iter().copied().filter(|v| v != drop).collect();
                let still_hits = sets.iter().all(|s| s.iter().any(|v| reduced.contains(v)));
                assert!(!still_hits, "{t:?} not minimal (can drop {drop})");
            }
        }
        // {1,2} must be among them (hits all three sets with two elements).
        assert!(ts.contains(&vec![1, 2]));
    }

    #[test]
    fn size_cap_is_respected() {
        let sets = vec![vec![0], vec![1], vec![2], vec![3]];
        // The only transversal is {0,1,2,3}; with max_size 3 it is pruned.
        let ts = minimal_transversals(
            &sets,
            CutLimits {
                max_size: 3,
                max_cuts: 100,
            },
        );
        assert!(ts.is_empty());
    }
}
