//! Baseline-delta helpers: evaluate a [`ServiceAvailabilityModel`] under
//! perturbed component parameters without rebuilding the model.
//!
//! The paper's dynamicity operations (Sec. V-A3) change the *topology*;
//! what-if campaigns additionally ask parametric questions — "this
//! component is dead", "every switch's MTBF halves" — that leave the
//! path-set structure intact and only move the probability vector. These
//! helpers exploit that: one BDD (or one compiled MC program) per
//! perspective serves every parametric scenario.
//!
//! The kill case has a closed form worth naming: setting `p_i = 0` drops
//! the service availability by exactly `p_i · B_i` where `B_i` is the
//! Birnbaum importance `A(x_i=1) − A(x_i=0)` — which is why a
//! `kill-each-component` campaign ranking is cross-checkable against
//! [`component_importance`](crate::importance::component_importance).

use crate::availability::ComponentAvailability;
use crate::bdd::Bdd;
use crate::transform::ServiceAvailabilityModel;

/// Exact service availability of `model` under a caller-supplied
/// probability vector (same component indexing as
/// [`ServiceAvailabilityModel::availability_vector`]).
///
/// This is [`ServiceAvailabilityModel::availability_bdd`] with the
/// probabilities decoupled from the stored components, so a campaign can
/// re-price one baseline structure under many parametric perturbations.
pub fn availability_with(model: &ServiceAvailabilityModel, probs: &[f64]) -> f64 {
    let mut bdd = Bdd::new();
    let mut f = bdd.one();
    for system in &model.systems {
        let pair = bdd.from_path_sets(&system.path_sets);
        f = bdd.and(f, pair);
    }
    bdd.probability(f, probs)
}

/// Availability drop caused by killing each component in turn
/// (`A − A(x_i=0)`, i.e. `p_i · B_i`), computed from a single shared BDD.
///
/// Returned in the model's component order; pair-wise deltas of a
/// `kill-each-component` campaign over one perspective must match these
/// values to floating-point identity.
pub fn kill_deltas(model: &ServiceAvailabilityModel) -> Vec<(String, f64)> {
    let mut bdd = Bdd::new();
    let mut f = bdd.one();
    for system in &model.systems {
        let pair = bdd.from_path_sets(&system.path_sets);
        f = bdd.and(f, pair);
    }
    let probs = model.availability_vector();
    let a = bdd.probability(f, &probs);
    model
        .components
        .iter()
        .enumerate()
        .map(|(i, component)| {
            let down = bdd.restrict(f, i as u32, false);
            let a_down = bdd.probability(down, &probs);
            (component.name.clone(), a - a_down)
        })
        .collect()
}

/// Re-prices one component under an MTBF scale factor, keeping MTTR and
/// redundancy: the steady-state (or paper-approximation) availability a
/// `scale-mtbf` sweep substitutes into the probability vector.
pub fn scaled_availability(
    component: &ComponentAvailability,
    mtbf_factor: f64,
    paper_formula: bool,
) -> f64 {
    ComponentAvailability::from_attributes(
        &component.name,
        component.mtbf * mtbf_factor,
        component.mttr,
        component.redundant,
        paper_formula,
    )
    .availability
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::importance::component_importance;
    use crate::transform::PairSystem;

    /// Two components in series, one redundant pair in parallel.
    fn fixture() -> ServiceAvailabilityModel {
        ServiceAvailabilityModel {
            components: vec![
                ComponentAvailability::from_attributes("a", 1000.0, 2.0, 0, false),
                ComponentAvailability::from_attributes("b", 500.0, 8.0, 0, false),
                ComponentAvailability::from_attributes("c", 250.0, 4.0, 1, false),
            ],
            systems: vec![PairSystem {
                atomic_service: "svc".into(),
                requester: "a".into(),
                provider: "b".into(),
                path_sets: vec![vec![0, 1], vec![0, 2]],
            }],
        }
    }

    #[test]
    fn availability_with_baseline_vector_matches_bdd() {
        let model = fixture();
        let exact = model.availability_bdd();
        let re = availability_with(&model, &model.availability_vector());
        assert_eq!(exact.to_bits(), re.to_bits());
    }

    #[test]
    fn killing_a_component_is_zeroing_its_probability() {
        let model = fixture();
        let deltas = kill_deltas(&model);
        let base = model.availability_bdd();
        for (i, (name, delta)) in deltas.iter().enumerate() {
            let mut probs = model.availability_vector();
            probs[i] = 0.0;
            let killed = availability_with(&model, &probs);
            assert!(
                (base - killed - delta).abs() < 1e-15,
                "{name}: restrict delta {delta} vs re-priced {}",
                base - killed
            );
        }
    }

    #[test]
    fn kill_delta_equals_p_times_birnbaum() {
        let model = fixture();
        let deltas = kill_deltas(&model);
        let importance = component_importance(&model);
        for (name, delta) in &deltas {
            let imp = importance
                .iter()
                .find(|imp| &imp.name == name)
                .expect("every component ranked");
            assert!(
                (delta - imp.availability * imp.birnbaum).abs() < 1e-12,
                "{name}: {delta} vs p·B {}",
                imp.availability * imp.birnbaum
            );
        }
    }

    #[test]
    fn mtbf_scaling_moves_availability_monotonically() {
        let model = fixture();
        let comp = &model.components[1];
        let worse = scaled_availability(comp, 0.5, false);
        let same = scaled_availability(comp, 1.0, false);
        let better = scaled_availability(comp, 4.0, false);
        assert!(worse < comp.availability);
        assert_eq!(same.to_bits(), comp.availability.to_bits());
        assert!(better > comp.availability);
    }
}
