//! Formula 1: steady-state availability from MTBF and MTTR.
//!
//! The paper prints `A_comp = 1 − MTTR/MTBF` (Formula 1) — the first-order
//! approximation of the standard renewal-theory result
//! `A = MTBF / (MTBF + MTTR)`. Both are provided; for every class of the
//! case study the difference is below 1e-4 (MTBF ≫ MTTR), which experiment
//! E8 verifies.

/// Exact steady-state availability `MTBF / (MTBF + MTTR)`.
///
/// Both times must be positive and finite; returns a value in `(0, 1)`.
pub fn steady_state(mtbf: f64, mttr: f64) -> f64 {
    assert!(
        mtbf > 0.0 && mtbf.is_finite(),
        "MTBF must be positive, got {mtbf}"
    );
    assert!(
        mttr >= 0.0 && mttr.is_finite(),
        "MTTR must be non-negative, got {mttr}"
    );
    mtbf / (mtbf + mttr)
}

/// The paper's printed Formula 1: `1 − MTTR/MTBF`. Clamped at zero for the
/// degenerate case `MTTR > MTBF` (where the approximation breaks down).
pub fn paper_approximation(mtbf: f64, mttr: f64) -> f64 {
    assert!(
        mtbf > 0.0 && mtbf.is_finite(),
        "MTBF must be positive, got {mtbf}"
    );
    assert!(
        mttr >= 0.0 && mttr.is_finite(),
        "MTTR must be non-negative, got {mttr}"
    );
    (1.0 - mttr / mtbf).max(0.0)
}

/// Availability of a component backed by `redundant` identical spares
/// (`redundantComponents` attribute, Fig. 6): the assembly fails only when
/// all `redundant + 1` units fail, `A' = 1 − (1 − A)^(r+1)`.
pub fn with_redundancy(availability: f64, redundant: i64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&availability),
        "availability out of range: {availability}"
    );
    assert!(redundant >= 0, "redundantComponents must be non-negative");
    1.0 - (1.0 - availability).powi(redundant as i32 + 1)
}

/// A named component with its dependability attributes and the resulting
/// availability — one row of the per-component table in experiment E8.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentAvailability {
    /// Component (instance) name.
    pub name: String,
    /// Mean time between failures, hours.
    pub mtbf: f64,
    /// Mean time to repair, hours.
    pub mttr: f64,
    /// Redundant components.
    pub redundant: i64,
    /// Steady-state availability including redundancy.
    pub availability: f64,
    /// Where the MTBF/MTTR values came from: authored model constants, or
    /// refined online from observed transitions (see [`crate::params`]).
    pub source: crate::params::ParamSource,
}

impl ComponentAvailability {
    /// Computes the availability of a component from its attributes, using
    /// the exact formula (or the paper's approximation when
    /// `paper_formula`), then applying redundancy.
    pub fn from_attributes(
        name: impl Into<String>,
        mtbf: f64,
        mttr: f64,
        redundant: i64,
        paper_formula: bool,
    ) -> Self {
        let base = if paper_formula {
            paper_approximation(mtbf, mttr)
        } else {
            steady_state(mtbf, mttr)
        };
        ComponentAvailability {
            name: name.into(),
            mtbf,
            mttr,
            redundant,
            availability: with_redundancy(base, redundant),
            source: crate::params::ParamSource::Authored,
        }
    }

    /// Unavailability `1 − A`.
    pub fn unavailability(&self) -> f64 {
        1.0 - self.availability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_formula_on_case_study_classes() {
        // Server: 60000 / 60000.1
        let a = steady_state(60_000.0, 0.1);
        assert!((a - 60_000.0 / 60_000.1).abs() < 1e-15);
        // Comp: 3000 / 3024
        let a = steady_state(3_000.0, 24.0);
        assert!((a - 3_000.0 / 3_024.0).abs() < 1e-15);
    }

    #[test]
    fn approximation_close_to_exact_when_mtbf_dominates() {
        for (mtbf, mttr) in [
            (60_000.0, 0.1),
            (183_498.0, 0.5),
            (61_320.0, 0.5),
            (199_000.0, 0.5),
            (188_575.0, 0.5),
            (3_000.0, 24.0),
            (2_880.0, 1.0),
        ] {
            let exact = steady_state(mtbf, mttr);
            let approx = paper_approximation(mtbf, mttr);
            assert!(approx <= exact, "approximation is a lower bound");
            assert!(
                exact - approx < 1e-4,
                "{mtbf}/{mttr}: {} vs {}",
                exact,
                approx
            );
        }
    }

    #[test]
    fn approximation_clamps_degenerate_inputs() {
        assert_eq!(paper_approximation(1.0, 2.0), 0.0);
        assert!(steady_state(1.0, 2.0) > 0.0);
    }

    #[test]
    fn redundancy_improves_availability() {
        let a = 0.9;
        assert_eq!(with_redundancy(a, 0), a);
        assert!((with_redundancy(a, 1) - 0.99).abs() < 1e-12);
        assert!((with_redundancy(a, 2) - 0.999).abs() < 1e-12);
        assert_eq!(with_redundancy(1.0, 5), 1.0);
        assert_eq!(with_redundancy(0.0, 0), 0.0);
    }

    #[test]
    fn component_availability_composes_formula_and_redundancy() {
        let c = ComponentAvailability::from_attributes("c1", 100.0, 100.0, 1, false);
        // base = 0.5, with 1 spare = 0.75
        assert!((c.availability - 0.75).abs() < 1e-12);
        assert!((c.unavailability() - 0.25).abs() < 1e-12);
        let paper = ComponentAvailability::from_attributes("c1", 100.0, 50.0, 0, true);
        assert!((paper.availability - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "MTBF must be positive")]
    fn zero_mtbf_rejected() {
        steady_state(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mttr_rejected() {
        steady_state(10.0, -1.0);
    }
}
