//! The UPSIM → availability-model transformation (paper Sec. VII and the
//! companion paper \[20\]).
//!
//! From a pipeline run ([`upsim_core::pipeline::UpsimRun`]) this module
//! builds a [`ServiceAvailabilityModel`]: per-component availabilities from
//! the class attributes via Formula 1 (+ redundancy), and per-mapping-pair
//! **path sets** over a shared component index space. The user-perceived
//! steady-state service availability is the probability that *every*
//! mapping pair of the composite service has at least one fully working
//! path — all atomic services execute (Sec. V-E).
//!
//! Evaluation engines (all exact ones agree to machine precision;
//! experiment E8 cross-validates):
//!
//! * [`ServiceAvailabilityModel::availability_bdd`] — exact, shared
//!   components across paths *and* pairs handled correctly,
//! * [`ServiceAvailabilityModel::pair_availability_sdp`] — exact per pair
//!   via sum of disjoint products,
//! * [`ServiceAvailabilityModel::availability_pairwise_product`] — the
//!   naive pair-independence approximation (what a per-pair RBD analysis
//!   yields); reported for comparison,
//! * [`ServiceAvailabilityModel::pair_rbd`] — the companion paper's
//!   parallel-of-series RBD, available when no component is shared between
//!   the paths of the pair (tree-like networks),
//! * [`ServiceAvailabilityModel::monte_carlo`] — parallel simulation.

use crate::availability::ComponentAvailability;
use crate::bdd::Bdd;
use crate::mcprog::McProgram;
use crate::montecarlo::{estimate, MonteCarloResult};
use crate::rbd::Block;
use crate::sdp::union_probability;
use std::collections::HashMap;
use std::sync::Arc;
use upsim_core::infrastructure::Infrastructure;
use upsim_core::interned::NameTable;
use upsim_core::pipeline::UpsimRun;

/// Options of the transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisOptions {
    /// Model link (connector) failures as components too. Off by default —
    /// the paper's case study analyses device availability; see DESIGN.md
    /// §4.3 for the link-attribute reconstruction.
    pub include_links: bool,
    /// Use the paper's printed Formula 1 (`1 − MTTR/MTBF`) instead of the
    /// exact `MTBF/(MTBF+MTTR)`.
    pub paper_formula: bool,
}

/// The path-set system of one mapping pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairSystem {
    /// The atomic service of the pair.
    pub atomic_service: String,
    /// Requester component name.
    pub requester: String,
    /// Provider component name.
    pub provider: String,
    /// Path sets over component indices (minimized: no superset survives).
    pub path_sets: Vec<Vec<usize>>,
}

/// The availability model of one service run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceAvailabilityModel {
    /// The components (index = variable in the path sets).
    pub components: Vec<ComponentAvailability>,
    /// One system per mapping pair, in service execution order.
    pub systems: Vec<PairSystem>,
}

fn minimize(mut sets: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    for s in &mut sets {
        s.sort_unstable();
        s.dedup();
    }
    sets.sort_by_key(|s| (s.len(), s.clone()));
    sets.dedup();
    let mut out: Vec<Vec<usize>> = Vec::new();
    'outer: for cand in sets {
        for kept in &out {
            if kept.iter().all(|v| cand.binary_search(v).is_ok()) {
                continue 'outer;
            }
        }
        out.push(cand);
    }
    out
}

impl ServiceAvailabilityModel {
    /// Builds the model from a pipeline run. Component availabilities come
    /// from the infrastructure's class attributes (Formula 1 + redundancy);
    /// every component on any discovered path becomes a variable.
    pub fn from_run(
        infrastructure: &Infrastructure,
        run: &UpsimRun,
        options: AnalysisOptions,
    ) -> Self {
        let mut components: Vec<ComponentAvailability> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();

        let device_var = |name: &str,
                          components: &mut Vec<ComponentAvailability>,
                          index: &mut HashMap<String, usize>| {
            *index.entry(name.to_string()).or_insert_with(|| {
                let mtbf = infrastructure
                    .mtbf(name)
                    .expect("device on a path has MTBF");
                let mttr = infrastructure
                    .mttr(name)
                    .expect("device on a path has MTTR");
                let redundant = infrastructure.redundant_components(name).unwrap_or(0);
                components.push(ComponentAvailability::from_attributes(
                    name,
                    mtbf,
                    mttr,
                    redundant,
                    options.paper_formula,
                ));
                components.len() - 1
            })
        };

        let mut systems = Vec::with_capacity(run.discovered.len());
        // Interned fast path: within one run every pair shares the graph's
        // name table, so a dense id → variable memo resolves repeated
        // components without re-hashing their names; each distinct device
        // touches the name index exactly once. The memo is rebuilt if a
        // hand-assembled run ever mixes name tables.
        let mut id_cache: Vec<usize> = Vec::new();
        let mut cache_table: Option<&Arc<NameTable>> = None;
        for discovered in &run.discovered {
            let table = discovered.name_table();
            if !cache_table.is_some_and(|t| Arc::ptr_eq(t, table)) {
                id_cache.clear();
                id_cache.resize(table.len(), usize::MAX);
                cache_table = Some(table);
            }
            let mut path_sets = Vec::with_capacity(discovered.len());
            for (nodes, links) in discovered.interned().iter().zip(&discovered.link_paths) {
                let mut set: Vec<usize> = nodes
                    .iter()
                    .map(|&id| {
                        let memo = &mut id_cache[id as usize];
                        if *memo == usize::MAX {
                            *memo = device_var(discovered.name(id), &mut components, &mut index);
                        }
                        *memo
                    })
                    .collect();
                if options.include_links {
                    for &li in links {
                        let key = format!("link:{li}");
                        let var = *index.entry(key.clone()).or_insert_with(|| {
                            let mtbf = infrastructure
                                .link_attr(li, "MTBF")
                                .expect("link on a path has MTBF");
                            let mttr = infrastructure
                                .link_attr(li, "MTTR")
                                .expect("link on a path has MTTR");
                            let redundant = infrastructure
                                .link_attr(li, "redundantComponents")
                                .map(|r| r as i64)
                                .unwrap_or(0);
                            components.push(ComponentAvailability::from_attributes(
                                key,
                                mtbf,
                                mttr,
                                redundant,
                                options.paper_formula,
                            ));
                            components.len() - 1
                        });
                        set.push(var);
                    }
                }
                path_sets.push(set);
            }
            systems.push(PairSystem {
                atomic_service: discovered.pair.atomic_service.clone(),
                requester: discovered.pair.requester.clone(),
                provider: discovered.pair.provider.clone(),
                path_sets: minimize(path_sets),
            });
        }
        ServiceAvailabilityModel {
            components,
            systems,
        }
    }

    /// The availability vector, indexed by variable.
    pub fn availability_vector(&self) -> Vec<f64> {
        self.components.iter().map(|c| c.availability).collect()
    }

    /// Exact user-perceived steady-state service availability: the
    /// probability that every pair has a working path, via one shared BDD.
    pub fn availability_bdd(&self) -> f64 {
        let mut bdd = Bdd::new();
        let mut f = bdd.one();
        for system in &self.systems {
            let pair = bdd.from_path_sets(&system.path_sets);
            f = bdd.and(f, pair);
        }
        bdd.probability(f, &self.availability_vector())
    }

    /// Exact availability of a single pair via BDD.
    pub fn pair_availability_bdd(&self, pair_index: usize) -> f64 {
        let mut bdd = Bdd::new();
        let f = bdd.from_path_sets(&self.systems[pair_index].path_sets);
        bdd.probability(f, &self.availability_vector())
    }

    /// Exact availability of a single pair via sum of disjoint products.
    pub fn pair_availability_sdp(&self, pair_index: usize) -> f64 {
        union_probability(
            &self.systems[pair_index].path_sets,
            &self.availability_vector(),
        )
    }

    /// The naive pair-independence approximation: the product of exact
    /// per-pair availabilities. Upper/lower bounds depend on the sharing
    /// structure; for the USI case study it *underestimates* (the same
    /// client/core components back several pairs).
    pub fn availability_pairwise_product(&self) -> f64 {
        (0..self.systems.len())
            .map(|i| self.pair_availability_bdd(i))
            .product()
    }

    /// The companion-paper RBD for one pair: parallel-of-series over its
    /// path sets. `None` when a component is shared between two paths of
    /// the pair (the RBD independence precondition fails; use BDD/SDP).
    pub fn pair_rbd(&self, pair_index: usize) -> Option<Block> {
        let block = Block::Parallel(
            self.systems[pair_index]
                .path_sets
                .iter()
                .map(|set| Block::Series(set.iter().map(|&v| Block::Unit(v)).collect()))
                .collect(),
        );
        block.validate_single_use().then_some(block)
    }

    /// Minimal cut sets of one pair: the minimal component sets whose joint
    /// failure disconnects requester from provider (paper Sec. VII's
    /// fault-tree view; also the "where can the problem be caused"
    /// overview).
    pub fn pair_cut_sets(&self, pair_index: usize) -> Vec<Vec<usize>> {
        crate::cutsets::minimal_cut_sets(
            &self.systems[pair_index].path_sets,
            crate::cutsets::CutLimits::default(),
        )
    }

    /// The fault tree of one pair, built over its minimal cut sets. Its
    /// BDD-exact top-event probability equals `1 − pair availability`.
    pub fn pair_fault_tree(&self, pair_index: usize) -> crate::faulttree::Gate {
        crate::cutsets::fault_tree_from_cut_sets(&self.pair_cut_sets(pair_index))
    }

    /// Parallel Monte-Carlo estimate of the service availability
    /// (trial-at-a-time reference sampler). Draws the same counter-based
    /// `(seed, trial, component)` stream as the compiled kernel, so the
    /// estimate is bit-identical for any `workers` value.
    pub fn monte_carlo(&self, samples: usize, workers: usize, seed: u64) -> MonteCarloResult {
        let systems: Vec<Vec<Vec<usize>>> =
            self.systems.iter().map(|s| s.path_sets.clone()).collect();
        estimate(
            &self.availability_vector(),
            &systems,
            samples,
            workers,
            seed,
        )
    }

    /// Compiles the model's structure function into a bit-sliced word
    /// program ([`McProgram`]): compile once per model, sample many times.
    pub fn compile_mc(&self) -> McProgram {
        McProgram::compile(
            &self.availability_vector(),
            self.systems.iter().map(|s| s.path_sets.as_slice()),
        )
    }

    /// Compiles the structure function **without constant folding**: the
    /// program keeps a slot for every pathed component, so scenario
    /// probability vectors can be swapped in via
    /// [`McProgram::with_thresholds`] while draw words stay shareable —
    /// the compile used by common-random-number campaign pricing.
    pub fn compile_mc_unfolded(&self) -> McProgram {
        McProgram::compile_unfolded(
            &self.availability_vector(),
            self.systems.iter().map(|s| s.path_sets.as_slice()),
        )
    }

    /// Bit-sliced parallel Monte-Carlo estimate: 64 trials per word,
    /// counter-based draws — bit-identical for a fixed `(seed, samples)`
    /// regardless of `workers`. Callers sampling the same model repeatedly
    /// should hold on to [`ServiceAvailabilityModel::compile_mc`] instead.
    pub fn monte_carlo_bitsliced(
        &self,
        samples: usize,
        workers: usize,
        seed: u64,
    ) -> MonteCarloResult {
        self.compile_mc().run(samples, workers, seed)
    }

    /// Looks up a component index by name.
    pub fn component_index(&self, name: &str) -> Option<usize> {
        self.components.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upsim_core::infrastructure::DeviceClassSpec;
    use upsim_core::mapping::{ServiceMapping, ServiceMappingPair};
    use upsim_core::pipeline::UpsimPipeline;
    use upsim_core::service::CompositeService;

    /// t1 - (a|b) - srv with a request/response service.
    fn run_fixture() -> (Infrastructure, UpsimRun) {
        let mut infra = Infrastructure::new("diamond");
        infra
            .define_device_class(DeviceClassSpec::client("Comp", 3000.0, 24.0))
            .unwrap();
        infra
            .define_device_class(DeviceClassSpec::switch("Sw", 61320.0, 0.5))
            .unwrap();
        infra
            .define_device_class(DeviceClassSpec::server("Server", 60000.0, 0.1))
            .unwrap();
        for (n, c) in [("t1", "Comp"), ("a", "Sw"), ("b", "Sw"), ("srv", "Server")] {
            infra.add_device(n, c).unwrap();
        }
        for (u, v) in [("t1", "a"), ("t1", "b"), ("a", "srv"), ("b", "srv")] {
            infra.connect(u, v).unwrap();
        }
        let svc = CompositeService::sequential("fetch", &["request", "response"]).unwrap();
        let mapping = ServiceMapping::new()
            .with(ServiceMappingPair::new("request", "t1", "srv"))
            .with(ServiceMappingPair::new("response", "srv", "t1"));
        let mut pipeline = UpsimPipeline::new(infra.clone(), svc, mapping).unwrap();
        let run = pipeline.run().unwrap();
        (infra, run)
    }

    fn expected_pair_availability() -> f64 {
        // A(t1) * A(srv) * (1 - (1 - A(a))(1 - A(b)))
        let a_t1 = 3000.0 / 3024.0;
        let a_srv = 60000.0 / 60000.1;
        let a_sw = 61320.0 / 61320.5;
        a_t1 * a_srv * (1.0 - (1.0 - a_sw) * (1.0 - a_sw))
    }

    #[test]
    fn model_extracts_components_and_paths() {
        let (_, run) = run_fixture();
        let model =
            ServiceAvailabilityModel::from_run(&run_fixture().0, &run, AnalysisOptions::default());
        assert_eq!(model.components.len(), 4);
        assert_eq!(model.systems.len(), 2);
        assert_eq!(model.systems[0].path_sets.len(), 2);
        assert_eq!(model.systems[0].path_sets[0].len(), 3);
    }

    #[test]
    fn bdd_matches_hand_computation() {
        let (infra, run) = run_fixture();
        let model = ServiceAvailabilityModel::from_run(&infra, &run, AnalysisOptions::default());
        let expected = expected_pair_availability();
        assert!((model.pair_availability_bdd(0) - expected).abs() < 1e-12);
        // request and response use identical components → the conjunction
        // equals a single pair.
        assert!((model.availability_bdd() - expected).abs() < 1e-12);
    }

    #[test]
    fn sdp_and_bdd_agree() {
        let (infra, run) = run_fixture();
        let model = ServiceAvailabilityModel::from_run(&infra, &run, AnalysisOptions::default());
        for i in 0..model.systems.len() {
            assert!(
                (model.pair_availability_bdd(i) - model.pair_availability_sdp(i)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn pairwise_product_underestimates_shared_pairs() {
        let (infra, run) = run_fixture();
        let model = ServiceAvailabilityModel::from_run(&infra, &run, AnalysisOptions::default());
        let exact = model.availability_bdd();
        let naive = model.availability_pairwise_product();
        assert!(
            naive < exact,
            "naive {naive} should underestimate exact {exact}"
        );
    }

    #[test]
    fn monte_carlo_confirms_bdd() {
        let (infra, run) = run_fixture();
        // Degrade availabilities so MC has signal: use paper formula on
        // small MTBFs via a custom vector.
        let mut model =
            ServiceAvailabilityModel::from_run(&infra, &run, AnalysisOptions::default());
        for c in &mut model.components {
            c.availability = 0.8; // stress the structure, not the numbers
        }
        let exact = model.availability_bdd();
        let mc = model.monte_carlo(200_000, 4, 5);
        assert!(
            mc.covers(exact),
            "CI {:?} misses {exact}",
            mc.confidence_95()
        );
    }

    #[test]
    fn bitsliced_monte_carlo_confirms_bdd_and_ignores_workers() {
        let (infra, run) = run_fixture();
        let mut model =
            ServiceAvailabilityModel::from_run(&infra, &run, AnalysisOptions::default());
        for c in &mut model.components {
            c.availability = 0.8;
        }
        let exact = model.availability_bdd();
        let program = model.compile_mc();
        let mc = program.run(200_000, 4, 5);
        assert!(
            mc.covers(exact),
            "CI {:?} misses {exact}",
            mc.confidence_95()
        );
        // The compiled program and the convenience wrapper agree, and the
        // estimate does not depend on the worker count.
        assert_eq!(mc, model.monte_carlo_bitsliced(200_000, 1, 5));
        assert_eq!(mc, program.run_scalar(200_000, 5));
    }

    #[test]
    fn rbd_available_for_shared_free_pairs() {
        let (infra, run) = run_fixture();
        let model = ServiceAvailabilityModel::from_run(&infra, &run, AnalysisOptions::default());
        // Both paths share t1 and srv → no single-use RBD.
        assert!(model.pair_rbd(0).is_none());
    }

    #[test]
    fn rbd_for_single_path_pair() {
        let mut infra = Infrastructure::new("chain");
        infra
            .define_device_class(DeviceClassSpec::client("C", 100.0, 1.0))
            .unwrap();
        infra
            .define_device_class(DeviceClassSpec::server("S", 100.0, 1.0))
            .unwrap();
        infra.add_device("c", "C").unwrap();
        infra.add_device("s", "S").unwrap();
        infra.connect("c", "s").unwrap();
        let svc = CompositeService::sequential("f", &["r"]).unwrap();
        let mapping = ServiceMapping::new().with(ServiceMappingPair::new("r", "c", "s"));
        let mut pipeline = UpsimPipeline::new(infra.clone(), svc, mapping).unwrap();
        let run = pipeline.run().unwrap();
        let model = ServiceAvailabilityModel::from_run(&infra, &run, AnalysisOptions::default());
        let rbd = model.pair_rbd(0).expect("single path is single-use");
        let expected = (100.0f64 / 101.0).powi(2);
        assert!((rbd.availability(&model.availability_vector()) - expected).abs() < 1e-12);
        assert!((model.pair_availability_bdd(0) - expected).abs() < 1e-12);
    }

    #[test]
    fn cut_sets_and_fault_tree_agree_with_bdd() {
        let (infra, run) = run_fixture();
        let model = ServiceAvailabilityModel::from_run(&infra, &run, AnalysisOptions::default());
        for i in 0..model.systems.len() {
            let cuts = model.pair_cut_sets(i);
            // Diamond: cuts are {t1}, {srv}, {a,b} (in variable indices).
            assert_eq!(cuts.iter().filter(|c| c.len() == 1).count(), 2);
            assert_eq!(cuts.iter().filter(|c| c.len() == 2).count(), 1);
            let ft = model.pair_fault_tree(i);
            let u = ft.top_event_probability(&model.availability_vector());
            let a = model.pair_availability_bdd(i);
            assert!((a + u - 1.0).abs() < 1e-12, "pair {i}: A={a} U={u}");
        }
    }

    #[test]
    fn include_links_adds_link_components() {
        let (infra, run) = run_fixture();
        let with_links = ServiceAvailabilityModel::from_run(
            &infra,
            &run,
            AnalysisOptions {
                include_links: true,
                ..Default::default()
            },
        );
        assert_eq!(with_links.components.len(), 8, "4 devices + 4 links");
        let without = ServiceAvailabilityModel::from_run(&infra, &run, AnalysisOptions::default());
        assert!(
            with_links.availability_bdd() < without.availability_bdd(),
            "links add failure modes"
        );
    }

    #[test]
    fn paper_formula_gives_lower_availability() {
        let (infra, run) = run_fixture();
        let exact = ServiceAvailabilityModel::from_run(&infra, &run, AnalysisOptions::default());
        let paper = ServiceAvailabilityModel::from_run(
            &infra,
            &run,
            AnalysisOptions {
                paper_formula: true,
                ..Default::default()
            },
        );
        let a_exact = exact.availability_bdd();
        let a_paper = paper.availability_bdd();
        assert!(a_paper < a_exact);
        assert!(a_exact - a_paper < 1e-4, "approximation stays tight");
    }
}
