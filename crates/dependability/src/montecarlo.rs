//! Parallel Monte-Carlo estimation of service availability.
//!
//! Cross-validates the analytic engines (BDD, SDP) and scales to systems
//! whose structure functions are too large for them. Sampling: every
//! component is up independently with its availability; the service is up
//! when **every** mapping pair has at least one fully-up path (all atomic
//! services of a composite service execute — paper Sec. V-E).
//!
//! Draws are counter-based and shared with the compiled kernel in
//! [`crate::mcprog`]: the draw for `(trial, component)` is the SplitMix64
//! finalizer over `seed + trial·γ + (component + 1)·γ'` compared against
//! the component's Bernoulli threshold. A draw is a pure function of its
//! coordinates, so the estimate is **bit-identical for a fixed
//! `(seed, samples)` regardless of worker count** — and trial-for-trial
//! identical to what an [`crate::mcprog::McProgram`] over the same
//! systems produces. Workers split the trial range contiguously over a
//! crossbeam scope, each reusing one bitset of component states.
//!
//! This is the reference trial-at-a-time sampler. The production path is
//! the compiled bit-sliced kernel in [`crate::mcprog`], which evaluates
//! 64 trials per `u64` word (512 per wide block) over the same draws.

use crate::mcprog::{mix, threshold_for, GAMMA, STREAM};

/// The result of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Estimated availability.
    pub estimate: f64,
    /// Standard error of the estimate (binomial).
    pub std_error: f64,
    /// Total samples drawn.
    pub samples: usize,
}

impl MonteCarloResult {
    /// Two-sided 95% confidence interval (Wilson score), clamped to
    /// `[0, 1]`.
    ///
    /// Unlike the Wald interval (`estimate ± 1.96·std_error`), the Wilson
    /// interval stays honest at the boundary: an estimate of exactly 0 or
    /// 1 (where the binomial `std_error` degenerates to 0) still yields a
    /// non-degenerate interval — e.g. `[1/(1 + z²/n), 1]` at `p̂ = 1` —
    /// instead of collapsing to a point. For interior estimates at the
    /// sample counts used here the two agree to within a fraction of the
    /// interval width.
    pub fn confidence_95(&self) -> (f64, f64) {
        if self.samples == 0 {
            return (0.0, 1.0);
        }
        let z = 1.96f64;
        let n = self.samples as f64;
        let p = self.estimate;
        let denom = 1.0 + z * z / n;
        let center = (p + z * z / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z * z / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// `true` when `value` lies in the 95% confidence interval.
    pub fn covers(&self, value: f64) -> bool {
        let (lo, hi) = self.confidence_95();
        (lo..=hi).contains(&value)
    }
}

/// Reused per-worker component-state scratch: one bit per component,
/// refilled each trial — no per-trial allocation.
struct StateBits {
    words: Vec<u64>,
}

impl StateBits {
    fn new(components: usize) -> Self {
        StateBits {
            words: vec![0; components.div_ceil(64)],
        }
    }

    #[inline(always)]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Draws every component's state for one trial.
    #[inline]
    fn draw(&mut self, thresholds: &[u64], seed: u64, trial: u64) {
        let trial_key = seed.wrapping_add(trial.wrapping_mul(GAMMA));
        for (w, chunk) in thresholds.chunks(64).enumerate() {
            let mut word = 0u64;
            for (lane, &threshold) in chunk.iter().enumerate() {
                let comp = (w * 64 + lane) as u64;
                let up = threshold == u64::MAX
                    || mix(trial_key.wrapping_add((comp + 1).wrapping_mul(STREAM))) < threshold;
                word |= u64::from(up) << lane;
            }
            self.words[w] = word;
        }
    }
}

/// Estimates `P(every system has an up path)` where each system is a list
/// of path sets over shared component indices.
///
/// * `availability[i]` — up-probability of component `i`,
/// * `systems` — one entry per mapping pair, each a list of path sets,
/// * `samples` — total samples (exact; split contiguously over workers),
/// * `workers` — 0 = available parallelism,
/// * `seed` — base RNG seed.
///
/// Deterministic: draws are keyed by `(seed, trial, component)` alone,
/// so the estimate is bit-identical for any `workers` value.
pub fn estimate(
    availability: &[f64],
    systems: &[Vec<Vec<usize>>],
    samples: usize,
    workers: usize,
    seed: u64,
) -> MonteCarloResult {
    assert!(samples > 0, "need at least one sample");
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    };
    let thresholds: Vec<u64> = availability.iter().map(|&a| threshold_for(a)).collect();
    let per_worker = samples.div_ceil(workers);

    let successes: u64 = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let thresholds = &thresholds;
        for w in 0..workers {
            let lo = (w * per_worker).min(samples);
            let hi = (lo + per_worker).min(samples);
            if lo == hi {
                break;
            }
            handles.push(scope.spawn(move |_| {
                let mut state = StateBits::new(thresholds.len());
                let mut ok = 0u64;
                for trial in lo as u64..hi as u64 {
                    state.draw(thresholds, seed, trial);
                    let service_up = systems
                        .iter()
                        .all(|paths| paths.iter().any(|set| set.iter().all(|&v| state.get(v))));
                    ok += u64::from(service_up);
                }
                ok
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    })
    .expect("crossbeam scope");

    let estimate = successes as f64 / samples as f64;
    let std_error = (estimate * (1.0 - estimate) / samples as f64).sqrt();
    MonteCarloResult {
        estimate,
        std_error,
        samples,
    }
}

/// Single-system convenience (one mapping pair).
pub fn estimate_single(
    availability: &[f64],
    path_sets: &[Vec<usize>],
    samples: usize,
    workers: usize,
    seed: u64,
) -> MonteCarloResult {
    estimate(availability, &[path_sets.to_vec()], samples, workers, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcprog::McProgram;
    use crate::sdp::union_probability;

    #[test]
    fn deterministic_for_fixed_seed_and_workers() {
        let p = [0.9, 0.8, 0.7];
        let sets = vec![vec![0, 1], vec![0, 2]];
        let a = estimate_single(&p, &sets, 10_000, 2, 42);
        let b = estimate_single(&p, &sets, 10_000, 2, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn worker_count_never_changes_the_estimate() {
        let p = [0.9, 0.8, 0.7, 0.95];
        let systems = vec![vec![vec![0, 1], vec![0, 2]], vec![vec![3, 0]]];
        let reference = estimate(&p, &systems, 10_001, 1, 42);
        for workers in [2, 3, 5, 8, 64] {
            assert_eq!(estimate(&p, &systems, 10_001, workers, 42), reference);
        }
    }

    #[test]
    fn draws_are_shared_with_the_compiled_kernel() {
        // Same coordinates, same thresholds, same structure function: the
        // scalar sampler and an unfolded McProgram must agree trial for
        // trial, hence bit for bit — including at a degenerate p = 1.
        let p = [0.9, 0.8, 1.0, 0.7];
        let systems = vec![vec![vec![0, 1], vec![0, 2, 3]], vec![vec![3]]];
        let program = McProgram::compile_unfolded(&p, systems.iter().map(Vec::as_slice));
        for (samples, seed) in [(257, 1u64), (5000, 42), (12_345, 2013)] {
            assert_eq!(
                estimate(&p, &systems, samples, 3, seed),
                program.run(samples, 2, seed)
            );
        }
    }

    #[test]
    fn converges_to_exact_value() {
        let p = [0.9, 0.8, 0.7];
        let sets = vec![vec![0, 1], vec![0, 2]];
        let exact = union_probability(&sets, &p);
        let mc = estimate_single(&p, &sets, 200_000, 4, 7);
        assert!(
            mc.covers(exact),
            "CI {:?} misses {exact}",
            mc.confidence_95()
        );
        assert!((mc.estimate - exact).abs() < 0.01);
    }

    #[test]
    fn multi_pair_conjunction_is_not_product_when_shared() {
        // Two pairs sharing component 0: P(both) = p0·p1·p2 when each pair
        // is {0,1} / {0,2} singly-pathed — the independent product would be
        // (p0 p1)(p0 p2).
        let p = [0.6, 0.9, 0.9];
        let systems = vec![vec![vec![0, 1]], vec![vec![0, 2]]];
        let exact = 0.6 * 0.9 * 0.9;
        let naive = (0.6 * 0.9) * (0.6 * 0.9);
        let mc = estimate(&p, &systems, 400_000, 4, 11);
        assert!(
            mc.covers(exact),
            "CI {:?} misses exact {exact}",
            mc.confidence_95()
        );
        assert!(
            !mc.covers(naive),
            "MC should reject the naive product {naive}"
        );
    }

    #[test]
    fn degenerate_systems() {
        let p = [0.5];
        // No pairs: service trivially up.
        let always = estimate(&p, &[], 1000, 1, 1);
        assert_eq!(always.estimate, 1.0);
        assert_eq!(always.std_error, 0.0);
        // A pair with no paths: never up.
        let never = estimate(&p, &[vec![]], 1000, 1, 1);
        assert_eq!(never.estimate, 0.0);
        // A pair with a trivial path: always up.
        let trivial = estimate(&p, &[vec![vec![]]], 1000, 1, 1);
        assert_eq!(trivial.estimate, 1.0);
    }

    #[test]
    fn worker_split_covers_requested_samples() {
        let p = [0.9];
        // Exactly the requested count — contiguous ranges, no rounding up
        // to a worker multiple.
        let mc = estimate_single(&p, &[vec![0]], 1001, 4, 3);
        assert_eq!(mc.samples, 1001);
        let mc = estimate_single(&p, &[vec![0]], 7, 64, 3);
        assert_eq!(mc.samples, 7);
    }

    #[test]
    fn perfect_components_give_certainty() {
        let p = [1.0, 1.0];
        let mc = estimate_single(&p, &[vec![0, 1]], 5_000, 2, 9);
        assert_eq!(mc.estimate, 1.0);
        // Wilson at p̂ = 1: the upper bound is exactly 1, the lower bound
        // 1/(1 + z²/n) — close to 1 but not a degenerate point interval.
        let (lo, hi) = mc.confidence_95();
        assert_eq!(hi, 1.0);
        assert!(lo < 1.0, "boundary CI must not collapse to a point");
        assert!(lo > 0.999, "lower bound stays tight at n = 5000: {lo}");
        assert!(mc.covers(0.9995));
        assert!(!mc.covers(0.99));
    }

    #[test]
    fn degenerate_zero_estimate_has_open_interval() {
        let p = [0.0];
        let mc = estimate_single(&p, &[vec![0]], 5_000, 1, 4);
        assert_eq!(mc.estimate, 0.0);
        assert_eq!(mc.std_error, 0.0);
        let (lo, hi) = mc.confidence_95();
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.001, "Wilson upper at p̂ = 0: {hi}");
        assert!(mc.covers(0.0005));
    }

    #[test]
    fn wilson_matches_wald_for_interior_estimates() {
        let mc = MonteCarloResult {
            estimate: 0.95,
            std_error: (0.95f64 * 0.05 / 200_000.0).sqrt(),
            samples: 200_000,
        };
        let (lo, hi) = mc.confidence_95();
        let (wald_lo, wald_hi) = (
            mc.estimate - 1.96 * mc.std_error,
            mc.estimate + 1.96 * mc.std_error,
        );
        assert!((lo - wald_lo).abs() < 1e-5, "wilson {lo} vs wald {wald_lo}");
        assert!((hi - wald_hi).abs() < 1e-5, "wilson {hi} vs wald {wald_hi}");
    }
}
