//! Parallel Monte-Carlo estimation of service availability.
//!
//! Cross-validates the analytic engines (BDD, SDP) and scales to systems
//! whose structure functions are too large for them. Sampling: every
//! component is up independently with its availability; the service is up
//! when **every** mapping pair has at least one fully-up path (all atomic
//! services of a composite service execute — paper Sec. V-E). Workers fan
//! out over a crossbeam scope with deterministic per-worker RNG streams, so
//! results are reproducible for a fixed `(seed, workers)` pair.
//!
//! This is the reference trial-at-a-time sampler. The production path is
//! the compiled bit-sliced kernel in [`crate::mcprog`]: 64 trials per
//! `u64` word and counter-based draws that make the estimate independent
//! of the worker count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The result of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Estimated availability.
    pub estimate: f64,
    /// Standard error of the estimate (binomial).
    pub std_error: f64,
    /// Total samples drawn.
    pub samples: usize,
}

impl MonteCarloResult {
    /// Two-sided 95% confidence interval (Wilson score), clamped to
    /// `[0, 1]`.
    ///
    /// Unlike the Wald interval (`estimate ± 1.96·std_error`), the Wilson
    /// interval stays honest at the boundary: an estimate of exactly 0 or
    /// 1 (where the binomial `std_error` degenerates to 0) still yields a
    /// non-degenerate interval — e.g. `[1/(1 + z²/n), 1]` at `p̂ = 1` —
    /// instead of collapsing to a point. For interior estimates at the
    /// sample counts used here the two agree to within a fraction of the
    /// interval width.
    pub fn confidence_95(&self) -> (f64, f64) {
        if self.samples == 0 {
            return (0.0, 1.0);
        }
        let z = 1.96f64;
        let n = self.samples as f64;
        let p = self.estimate;
        let denom = 1.0 + z * z / n;
        let center = (p + z * z / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z * z / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// `true` when `value` lies in the 95% confidence interval.
    pub fn covers(&self, value: f64) -> bool {
        let (lo, hi) = self.confidence_95();
        (lo..=hi).contains(&value)
    }
}

/// Estimates `P(every system has an up path)` where each system is a list
/// of path sets over shared component indices.
///
/// * `availability[i]` — up-probability of component `i`,
/// * `systems` — one entry per mapping pair, each a list of path sets,
/// * `samples` — total samples (split over workers),
/// * `workers` — 0 = available parallelism,
/// * `seed` — base RNG seed.
pub fn estimate(
    availability: &[f64],
    systems: &[Vec<Vec<usize>>],
    samples: usize,
    workers: usize,
    seed: u64,
) -> MonteCarloResult {
    assert!(samples > 0, "need at least one sample");
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    };
    let per_worker = samples.div_ceil(workers);
    let total = per_worker * workers;

    let successes: usize = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            handles.push(scope.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(w as u64));
                let mut up = vec![false; availability.len()];
                let mut ok = 0usize;
                for _ in 0..per_worker {
                    for (i, &a) in availability.iter().enumerate() {
                        up[i] = rng.random::<f64>() < a;
                    }
                    let service_up = systems
                        .iter()
                        .all(|paths| paths.iter().any(|set| set.iter().all(|&v| up[v])));
                    if service_up {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    })
    .expect("crossbeam scope");

    let estimate = successes as f64 / total as f64;
    let std_error = (estimate * (1.0 - estimate) / total as f64).sqrt();
    MonteCarloResult {
        estimate,
        std_error,
        samples: total,
    }
}

/// Single-system convenience (one mapping pair).
pub fn estimate_single(
    availability: &[f64],
    path_sets: &[Vec<usize>],
    samples: usize,
    workers: usize,
    seed: u64,
) -> MonteCarloResult {
    estimate(availability, &[path_sets.to_vec()], samples, workers, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdp::union_probability;

    #[test]
    fn deterministic_for_fixed_seed_and_workers() {
        let p = [0.9, 0.8, 0.7];
        let sets = vec![vec![0, 1], vec![0, 2]];
        let a = estimate_single(&p, &sets, 10_000, 2, 42);
        let b = estimate_single(&p, &sets, 10_000, 2, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn converges_to_exact_value() {
        let p = [0.9, 0.8, 0.7];
        let sets = vec![vec![0, 1], vec![0, 2]];
        let exact = union_probability(&sets, &p);
        let mc = estimate_single(&p, &sets, 200_000, 4, 7);
        assert!(
            mc.covers(exact),
            "CI {:?} misses {exact}",
            mc.confidence_95()
        );
        assert!((mc.estimate - exact).abs() < 0.01);
    }

    #[test]
    fn multi_pair_conjunction_is_not_product_when_shared() {
        // Two pairs sharing component 0: P(both) = p0·p1·p2 when each pair
        // is {0,1} / {0,2} singly-pathed — the independent product would be
        // (p0 p1)(p0 p2).
        let p = [0.6, 0.9, 0.9];
        let systems = vec![vec![vec![0, 1]], vec![vec![0, 2]]];
        let exact = 0.6 * 0.9 * 0.9;
        let naive = (0.6 * 0.9) * (0.6 * 0.9);
        let mc = estimate(&p, &systems, 400_000, 4, 11);
        assert!(
            mc.covers(exact),
            "CI {:?} misses exact {exact}",
            mc.confidence_95()
        );
        assert!(
            !mc.covers(naive),
            "MC should reject the naive product {naive}"
        );
    }

    #[test]
    fn degenerate_systems() {
        let p = [0.5];
        // No pairs: service trivially up.
        let always = estimate(&p, &[], 1000, 1, 1);
        assert_eq!(always.estimate, 1.0);
        assert_eq!(always.std_error, 0.0);
        // A pair with no paths: never up.
        let never = estimate(&p, &[vec![]], 1000, 1, 1);
        assert_eq!(never.estimate, 0.0);
        // A pair with a trivial path: always up.
        let trivial = estimate(&p, &[vec![vec![]]], 1000, 1, 1);
        assert_eq!(trivial.estimate, 1.0);
    }

    #[test]
    fn worker_split_covers_requested_samples() {
        let p = [0.9];
        let mc = estimate_single(&p, &[vec![0]], 1001, 4, 3);
        assert!(mc.samples >= 1001);
    }

    #[test]
    fn perfect_components_give_certainty() {
        let p = [1.0, 1.0];
        let mc = estimate_single(&p, &[vec![0, 1]], 5_000, 2, 9);
        assert_eq!(mc.estimate, 1.0);
        // Wilson at p̂ = 1: the upper bound is exactly 1, the lower bound
        // 1/(1 + z²/n) — close to 1 but not a degenerate point interval.
        let (lo, hi) = mc.confidence_95();
        assert_eq!(hi, 1.0);
        assert!(lo < 1.0, "boundary CI must not collapse to a point");
        assert!(lo > 0.999, "lower bound stays tight at n = 5000: {lo}");
        assert!(mc.covers(0.9995));
        assert!(!mc.covers(0.99));
    }

    #[test]
    fn degenerate_zero_estimate_has_open_interval() {
        let p = [0.0];
        let mc = estimate_single(&p, &[vec![0]], 5_000, 1, 4);
        assert_eq!(mc.estimate, 0.0);
        assert_eq!(mc.std_error, 0.0);
        let (lo, hi) = mc.confidence_95();
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.001, "Wilson upper at p̂ = 0: {hi}");
        assert!(mc.covers(0.0005));
    }

    #[test]
    fn wilson_matches_wald_for_interior_estimates() {
        let mc = MonteCarloResult {
            estimate: 0.95,
            std_error: (0.95f64 * 0.05 / 200_000.0).sqrt(),
            samples: 200_000,
        };
        let (lo, hi) = mc.confidence_95();
        let (wald_lo, wald_hi) = (
            mc.estimate - 1.96 * mc.std_error,
            mc.estimate + 1.96 * mc.std_error,
        );
        assert!((lo - wald_lo).abs() < 1e-5, "wilson {lo} vs wald {wald_lo}");
        assert!((hi - wald_hi).abs() < 1e-5, "wilson {hi} vs wald {wald_hi}");
    }
}
