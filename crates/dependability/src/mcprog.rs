//! Compiled bit-sliced Monte-Carlo structure-function programs.
//!
//! [`montecarlo::estimate`](crate::montecarlo::estimate) walks the path
//! sets once per trial, drawing one `f64` per component into a
//! `Vec<bool>`. This module compiles the same structure function — a
//! word-AND over each path's components, a word-OR over each mapping
//! pair's paths, a word-AND over the pairs — into a flat [`McProgram`]
//! that evaluates **64 independent trials per `u64` word**: per-component
//! Bernoulli draws are packed one trial per bit lane and a popcount of
//! the final service word accumulates successes.
//!
//! The per-lane RNG is counter-based: the draw for `(trial, component)`
//! is the SplitMix64 finalizer applied to
//! `seed + trial·γ + (component_index + 1)·γ'` (γ is the SplitMix64
//! increment, γ' a second odd constant), i.e. lane `trial` reads the
//! SplitMix64 stream at a Weyl position keyed by both coordinates. The
//! trial index enters with the full golden-gamma stride — not `+1` — so
//! nearby seeds produce decorrelated sample sets instead of shifted
//! copies of each other. A draw is a pure function of its coordinates —
//! no state is consumed — so the estimate is **bit-identical for a fixed
//! `(seed, samples)` regardless of worker count** (an improvement over
//! the per-worker streams of the scalar sampler, which change results
//! when `workers` changes), and the trial-at-a-time twin
//! [`McProgram::run_scalar`] reproduces [`McProgram::run`] exactly.
//!
//! Compilation constant-folds degenerate availabilities: a component with
//! `p ≥ 1` is dropped from its paths (AND identity), a path containing a
//! component with `p ≤ 0` is dropped from its pair, a pair left with an
//! empty path is certainly up and dropped from the service, and a pair
//! left with *no* path pins the whole estimate to 0. Only genuinely
//! stochastic components are drawn.

use crate::montecarlo::MonteCarloResult;

/// The SplitMix64 state increment (odd; "golden gamma") — the per-trial
/// Weyl stride.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A second odd constant (the first SplitMix64 mix multiplier) — the
/// per-component stream stride. Distinct from [`GAMMA`] so that
/// `(trial, component)` coordinates cannot alias each other within any
/// realistic trial range.
const STREAM: u64 = 0xBF58_476D_1CE4_E5B9;

/// `2^64` as an `f64` — the Bernoulli threshold scale.
const TWO_POW_64: f64 = 18_446_744_073_709_551_616.0;

/// The SplitMix64 output finalizer (Steele et al., "Fast splittable
/// pseudorandom number generators").
#[inline(always)]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One stochastic component of a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompDraw {
    /// RNG stream offset: `(model_component_index + 1)·γ'`. Keyed by the
    /// *model* index, not the slot, so the draw for a component does not
    /// depend on which other components survived constant folding.
    stream: u64,
    /// The component is up in a lane iff its draw is `< threshold`
    /// (`threshold ≈ p·2⁶⁴`; relative quantization error ≤ 2⁻⁵³).
    threshold: u64,
}

impl CompDraw {
    /// The up/down draw for one global trial index.
    #[inline(always)]
    fn up(&self, seed: u64, trial: u64) -> bool {
        let key = seed
            .wrapping_add(trial.wrapping_mul(GAMMA))
            .wrapping_add(self.stream);
        mix(key) < self.threshold
    }

    /// 64 consecutive trials packed one per bit lane (lane `l` holds
    /// trial `base_trial + l`).
    #[inline(always)]
    fn pack(&self, seed: u64, base_trial: u64) -> u64 {
        let mut key = seed
            .wrapping_add(base_trial.wrapping_mul(GAMMA))
            .wrapping_add(self.stream);
        let mut word = 0u64;
        for lane in 0..64u64 {
            word |= u64::from(mix(key) < self.threshold) << lane;
            key = key.wrapping_add(GAMMA);
        }
        word
    }
}

/// A compiled bit-sliced Monte-Carlo program: the flat word encoding of
/// one perspective's structure function over its stochastic components.
///
/// Compile once per `(epoch, perspective)` (the server embeds the program
/// in its cache entry), then [`run`](McProgram::run) as often as needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McProgram {
    /// One entry per drawn component slot.
    draws: Vec<CompDraw>,
    /// Flat slot ids; each path is a span of this.
    path_slots: Vec<u32>,
    /// `[start, end)` spans into `path_slots`, one per surviving path.
    paths: Vec<(u32, u32)>,
    /// `[start, end)` spans into `paths`, one per surviving mapping pair.
    pairs: Vec<(u32, u32)>,
    /// Some pair lost every path to constant folding: the service is
    /// certainly down and the estimate is exactly 0.
    dead: bool,
}

/// Reusable per-worker scratch: one packed draw word per program slot.
#[derive(Debug, Default, Clone)]
pub struct McScratch {
    words: Vec<u64>,
}

impl McProgram {
    /// Compiles path-set systems (one entry per mapping pair, each a list
    /// of component-index path sets) against an availability vector.
    pub fn compile<'a>(
        availability: &[f64],
        systems: impl IntoIterator<Item = &'a [Vec<usize>]>,
    ) -> Self {
        let mut slot_of: Vec<u32> = vec![u32::MAX; availability.len()];
        let mut program = McProgram {
            draws: Vec::new(),
            path_slots: Vec::new(),
            paths: Vec::new(),
            pairs: Vec::new(),
            dead: false,
        };
        let mut path_comps: Vec<usize> = Vec::new();
        for sets in systems {
            let pair_lo = program.paths.len();
            let mut certainly_up = false;
            for set in sets {
                // Constant-fold the path: drop perfect components, drop
                // the path if any component can never be up.
                path_comps.clear();
                let mut viable = true;
                for &comp in set {
                    let p = availability[comp];
                    if p <= 0.0 {
                        viable = false;
                        break;
                    }
                    if p < 1.0 && !path_comps.contains(&comp) {
                        path_comps.push(comp);
                    }
                }
                if !viable {
                    continue;
                }
                if path_comps.is_empty() {
                    // A path with no stochastic component always works, so
                    // the whole pair does.
                    certainly_up = true;
                    break;
                }
                let lo = program.path_slots.len() as u32;
                for &comp in &path_comps {
                    let slot = if slot_of[comp] == u32::MAX {
                        let slot = program.draws.len() as u32;
                        slot_of[comp] = slot;
                        program.draws.push(CompDraw {
                            stream: (comp as u64 + 1).wrapping_mul(STREAM),
                            threshold: (availability[comp] * TWO_POW_64) as u64,
                        });
                        slot
                    } else {
                        slot_of[comp]
                    };
                    program.path_slots.push(slot);
                }
                program.paths.push((lo, program.path_slots.len() as u32));
            }
            if certainly_up {
                program.paths.truncate(pair_lo);
                continue;
            }
            if program.paths.len() == pair_lo {
                program.dead = true;
            }
            program
                .pairs
                .push((pair_lo as u32, program.paths.len() as u32));
        }
        program
    }

    /// Number of stochastic components the program draws per trial block.
    pub fn component_count(&self) -> usize {
        self.draws.len()
    }

    /// A constant estimate, when the structure function folded to one:
    /// `Some(0.0)` when some pair has no working path, `Some(1.0)` when
    /// every pair is certainly up.
    pub fn constant_estimate(&self) -> Option<f64> {
        if self.dead {
            Some(0.0)
        } else if self.pairs.is_empty() {
            Some(1.0)
        } else {
            None
        }
    }

    /// A scratch buffer sized for this program (reused across blocks; the
    /// parallel runner keeps one per worker).
    pub fn scratch(&self) -> McScratch {
        McScratch {
            words: vec![0; self.draws.len()],
        }
    }

    /// Evaluates one 64-trial block (trials `block·64 .. block·64 + 64`),
    /// returning the service word (bit lane = trial up). Early exits are
    /// exact: draws are pure functions of their coordinates, so skipping
    /// them cannot skew later blocks.
    fn block_word(&self, seed: u64, block: u64, scratch: &mut McScratch) -> u64 {
        let base_trial = block.wrapping_mul(64);
        for (slot, draw) in self.draws.iter().enumerate() {
            scratch.words[slot] = draw.pack(seed, base_trial);
        }
        let mut service = !0u64;
        for &(pair_lo, pair_hi) in &self.pairs {
            let mut pair_up = 0u64;
            for &(lo, hi) in &self.paths[pair_lo as usize..pair_hi as usize] {
                let mut path_up = !0u64;
                for &slot in &self.path_slots[lo as usize..hi as usize] {
                    path_up &= scratch.words[slot as usize];
                    if path_up == 0 {
                        break;
                    }
                }
                pair_up |= path_up;
                if pair_up == !0u64 {
                    break;
                }
            }
            service &= pair_up;
            if service == 0 {
                break;
            }
        }
        service
    }

    /// Successes among trials `[block·64, block·64 + 64) ∩ [0, samples)`.
    fn block_successes(
        &self,
        seed: u64,
        block: u64,
        samples: usize,
        scratch: &mut McScratch,
    ) -> u64 {
        let lanes = samples - (block as usize) * 64;
        let mask = if lanes >= 64 {
            !0u64
        } else {
            (1u64 << lanes) - 1
        };
        u64::from((self.block_word(seed, block, scratch) & mask).count_ones())
    }

    /// Bit-sliced parallel Monte-Carlo run: exactly `samples` trials,
    /// fanned out over `workers` crossbeam threads (0 = available
    /// parallelism) in contiguous 64-trial block ranges with one reusable
    /// scratch buffer per worker. Deterministic: the successes of a block
    /// depend only on `(seed, block)`, and summation over blocks is
    /// partition-invariant, so the estimate is bit-identical for any
    /// `workers` value.
    pub fn run(&self, samples: usize, workers: usize, seed: u64) -> MonteCarloResult {
        assert!(samples > 0, "need at least one sample");
        if let Some(estimate) = self.constant_estimate() {
            return MonteCarloResult {
                estimate,
                std_error: 0.0,
                samples,
            };
        }
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let blocks = samples.div_ceil(64) as u64;
        let per_worker = blocks.div_ceil(workers as u64).max(1);
        let successes: u64 = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers as u64 {
                let lo = (w * per_worker).min(blocks);
                let hi = (lo + per_worker).min(blocks);
                if lo == hi {
                    break;
                }
                handles.push(scope.spawn(move |_| {
                    let mut scratch = self.scratch();
                    let mut ok = 0u64;
                    for block in lo..hi {
                        ok += self.block_successes(seed, block, samples, &mut scratch);
                    }
                    ok
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        })
        .expect("crossbeam scope");
        result_from(successes, samples)
    }

    /// The trial-at-a-time twin of [`run`](McProgram::run): identical
    /// draws (same counter-based coordinates), identical structure
    /// function, one trial per iteration. Exists to differential-test the
    /// bit-sliced executor — the two must agree bit-for-bit.
    pub fn run_scalar(&self, samples: usize, seed: u64) -> MonteCarloResult {
        assert!(samples > 0, "need at least one sample");
        if let Some(estimate) = self.constant_estimate() {
            return MonteCarloResult {
                estimate,
                std_error: 0.0,
                samples,
            };
        }
        let mut successes = 0u64;
        for trial in 0..samples as u64 {
            let service_up = self.pairs.iter().all(|&(pair_lo, pair_hi)| {
                self.paths[pair_lo as usize..pair_hi as usize]
                    .iter()
                    .any(|&(lo, hi)| {
                        self.path_slots[lo as usize..hi as usize]
                            .iter()
                            .all(|&slot| self.draws[slot as usize].up(seed, trial))
                    })
            });
            successes += u64::from(service_up);
        }
        result_from(successes, samples)
    }
}

fn result_from(successes: u64, samples: usize) -> MonteCarloResult {
    let estimate = successes as f64 / samples as f64;
    MonteCarloResult {
        estimate,
        std_error: (estimate * (1.0 - estimate) / samples as f64).sqrt(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdp::union_probability;

    fn compile(p: &[f64], systems: &[Vec<Vec<usize>>]) -> McProgram {
        McProgram::compile(p, systems.iter().map(Vec::as_slice))
    }

    #[test]
    fn estimate_is_bit_identical_for_any_worker_count() {
        let p = [0.9, 0.8, 0.7, 0.95];
        let systems = vec![vec![vec![0, 1], vec![0, 2]], vec![vec![3, 0]]];
        let program = compile(&p, &systems);
        // 10_001 is deliberately not a multiple of 64 (tail block).
        let reference = program.run(10_001, 1, 42);
        for workers in [2, 3, 5, 8, 64] {
            assert_eq!(program.run(10_001, workers, 42), reference);
        }
    }

    #[test]
    fn bitsliced_equals_scalar_twin_exactly() {
        let p = [0.9, 0.8, 0.7];
        let systems = vec![vec![vec![0, 1], vec![0, 2]]];
        let program = compile(&p, &systems);
        for samples in [1, 63, 64, 65, 1000] {
            for seed in [0, 7, 2013] {
                assert_eq!(
                    program.run(samples, 3, seed),
                    program.run_scalar(samples, seed),
                    "samples={samples} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn converges_to_exact_union_probability() {
        let p = [0.9, 0.8, 0.7];
        let sets = vec![vec![0, 1], vec![0, 2]];
        let exact = union_probability(&sets, &p);
        let mc = compile(&p, &[sets]).run(200_000, 4, 7);
        assert!(
            mc.covers(exact),
            "CI {:?} misses {exact}",
            mc.confidence_95()
        );
        assert!((mc.estimate - exact).abs() < 0.01);
    }

    #[test]
    fn shared_components_across_pairs_are_not_independent() {
        // Same cross-check as the scalar sampler: two pairs sharing
        // component 0 conjunct to p0·p1·p2, not (p0·p1)(p0·p2).
        let p = [0.6, 0.9, 0.9];
        let systems = vec![vec![vec![0, 1]], vec![vec![0, 2]]];
        let exact = 0.6 * 0.9 * 0.9;
        let naive = (0.6 * 0.9) * (0.6 * 0.9);
        let mc = compile(&p, &systems).run(400_000, 4, 13);
        assert!(
            mc.covers(exact),
            "CI {:?} misses {exact}",
            mc.confidence_95()
        );
        assert!(!mc.covers(naive), "must reject the naive product {naive}");
    }

    #[test]
    fn degenerate_structures_fold_to_constants() {
        let p = [0.5, 1.0, 0.0];
        // No pairs at all: certainly up.
        assert_eq!(compile(&p, &[]).constant_estimate(), Some(1.0));
        // One pair with no paths: certainly down.
        assert_eq!(compile(&p, &[vec![]]).constant_estimate(), Some(0.0));
        // A trivial (empty) path: the pair is certainly up.
        assert_eq!(compile(&p, &[vec![vec![]]]).constant_estimate(), Some(1.0));
        // A path of only perfect components folds to a trivial path.
        assert_eq!(
            compile(&p, &[vec![vec![1, 1]]]).constant_estimate(),
            Some(1.0)
        );
        // Every path blocked by a never-up component: certainly down.
        assert_eq!(
            compile(&p, &[vec![vec![0, 2], vec![2]]]).constant_estimate(),
            Some(0.0)
        );
        // The constants run without sampling and with zero error.
        let dead = compile(&p, &[vec![]]).run(1000, 2, 1);
        assert_eq!(
            (dead.estimate, dead.std_error, dead.samples),
            (0.0, 0.0, 1000)
        );
        let up = compile(&p, &[]).run_scalar(1000, 1);
        assert_eq!(up.estimate, 1.0);
    }

    #[test]
    fn perfect_components_give_certainty() {
        let p = [1.0, 1.0];
        let mc = compile(&p, &[vec![vec![0, 1]]]).run(5_000, 2, 9);
        assert_eq!(mc.estimate, 1.0);
        assert_eq!(mc.std_error, 0.0);
    }

    #[test]
    fn exact_sample_count_is_preserved() {
        let p = [0.9];
        let mc = compile(&p, &[vec![vec![0]]]).run(1001, 4, 3);
        assert_eq!(mc.samples, 1001);
        // The tail mask must hide lanes ≥ samples: a fully-up component
        // must hit exactly `samples` successes, not a padded multiple.
        let all = compile(&[1.0 - 1e-18], &[vec![vec![0]]]).run(77, 3, 5);
        assert_eq!(all.samples, 77);
    }

    #[test]
    fn mixing_constants_into_stochastic_paths_matches_exact() {
        // p1 = 1 drops out of the path, p3 = 0 kills the second path.
        let p = [0.7, 1.0, 0.9, 0.0];
        let systems = vec![vec![vec![0, 1], vec![2, 3]]];
        let program = compile(&p, &systems);
        assert_eq!(program.component_count(), 1, "only component 0 is drawn");
        let mc = program.run(200_000, 2, 13);
        assert!(mc.covers(0.7), "CI {:?} misses 0.7", mc.confidence_95());
    }
}
