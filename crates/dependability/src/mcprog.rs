//! Compiled bit-sliced Monte-Carlo structure-function programs.
//!
//! [`montecarlo::estimate`](crate::montecarlo::estimate) walks the path
//! sets once per trial, drawing one word per component into a reused
//! bitset. This module compiles the same structure function — a
//! word-AND over each path's components, a word-OR over each mapping
//! pair's paths, a word-AND over the pairs — into a flat [`McProgram`]
//! that evaluates **64 independent trials per `u64` word**: per-component
//! Bernoulli draws are packed one trial per bit lane and a popcount of
//! the final service word accumulates successes.
//!
//! The per-lane RNG is counter-based: the draw for `(trial, component)`
//! is the SplitMix64 finalizer applied to
//! `seed + trial·γ + (component_index + 1)·γ'` (γ is the SplitMix64
//! increment, γ' a second odd constant), i.e. lane `trial` reads the
//! SplitMix64 stream at a Weyl position keyed by both coordinates. The
//! trial index enters with the full golden-gamma stride — not `+1` — so
//! nearby seeds produce decorrelated sample sets instead of shifted
//! copies of each other. A draw is a pure function of its coordinates —
//! no state is consumed — so the estimate is **bit-identical for a fixed
//! `(seed, samples)` regardless of worker count**, and the twins
//! [`McProgram::run_narrow`] (one 64-trial word at a time) and
//! [`McProgram::run_scalar`] (one trial at a time) reproduce
//! [`McProgram::run`] exactly.
//!
//! # Wide-lane execution
//!
//! The production executor [`McProgram::run`] generates draws in
//! **wide blocks of [`WIDE_WORDS`] words = 512 trials**: because the
//! draw counters advance by a constant Weyl stride, the whole
//! mix/compare/pack loop is a pure function of `lane`, and the packing
//! kernel is compiled three times — an AVX-512 version (native 64-bit
//! vector multiply via `avx512dq`), an AVX2 version, and a portable
//! scalar version — with the best one picked once per process by runtime
//! CPU feature detection. All three run the *same* Rust loop over the
//! same coordinates, so the choice never changes a single draw bit.
//!
//! # Draw-word reuse (common random numbers)
//!
//! [`McProgram::draw_table`] packs every slot's words for a whole
//! `(seed, samples)` grid once; [`McProgram::run_with_table`] then
//! evaluates a program against that table, re-packing only slots whose
//! `(stream, threshold)` key differs from the table's. Combined with
//! [`McProgram::compile_unfolded`] / [`McProgram::with_thresholds`]
//! (which keep program shape fixed while thresholds move) this is the
//! common-random-number engine behind campaign pricing: an N-scenario
//! sweep draws the baseline stream once and each scenario re-packs only
//! the components its perturbation touched. The table is a pure cache —
//! `run_with_table` is bit-identical to `run(samples, 1, seed)` on the
//! same program. The clone-free twins
//! [`McProgram::run_with_table_thresholds`] and
//! [`McProgram::run_thresholds`] apply the threshold rewrite as a
//! scratch-held overlay instead of cloning the program, so per-scenario
//! setup cost is O(slots copied), not O(program allocated).
//!
//! # Parallel execution
//!
//! [`McProgram::run`] executes inline when one worker (or one block)
//! suffices; otherwise its workers drain a shared atomic block cursor
//! ([`McProgram::run_partial`]) in [`steal_chunk`]-sized claims, so a
//! straggler rebalances instead of serializing the tail. The same
//! partial-run API lets the engine's persistent worker pool price one
//! `MC` query cooperatively — successes sum identically for every
//! partition ([`mc_result_from`]).
//!
//! Compilation constant-folds degenerate availabilities: a component with
//! `p ≥ 1` is dropped from its paths (AND identity), a path containing a
//! component with `p ≤ 0` is dropped from its pair, a pair left with an
//! empty path is certainly up and dropped from the service, and a pair
//! left with *no* path pins the whole estimate to 0. Only genuinely
//! stochastic components are drawn.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::montecarlo::MonteCarloResult;
use crate::params::{unit_open, PosteriorComponent};

/// The SplitMix64 state increment (odd; "golden gamma") — the per-trial
/// Weyl stride.
pub(crate) const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A second odd constant (the first SplitMix64 mix multiplier) — the
/// per-component stream stride. Distinct from [`GAMMA`] so that
/// `(trial, component)` coordinates cannot alias each other within any
/// realistic trial range.
pub(crate) const STREAM: u64 = 0xBF58_476D_1CE4_E5B9;

/// Salt of the per-block posterior *failure-rate* draw stream. XORed
/// into the counter key before mixing, so posterior draws can never
/// alias the trial draw stream (which is never salted).
const POSTERIOR_FAIL_SALT: u64 = 0x94D0_49BB_1331_11EB;

/// Salt of the per-block posterior *repair-rate* draw stream.
const POSTERIOR_REPAIR_SALT: u64 = 0xD1B5_4A32_D192_ED03;

/// `2^64` as an `f64` — the Bernoulli threshold scale.
const TWO_POW_64: f64 = 18_446_744_073_709_551_616.0;

/// Words per wide draw block: the wide kernel packs
/// `WIDE_WORDS × 64 = 512` trials per component per step.
pub const WIDE_WORDS: usize = 8;

/// Trials per wide block.
const WIDE_TRIALS: usize = WIDE_WORDS * 64;

/// The SplitMix64 output finalizer (Steele et al., "Fast splittable
/// pseudorandom number generators").
#[inline(always)]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The Bernoulli threshold of an up-probability: a component is up in a
/// lane iff its draw is `< threshold`. The boundaries are exact: `p ≤ 0`
/// maps to 0 (no draw can be below it) and `p ≥ 1` to the
/// always-up sentinel `u64::MAX` (handled without drawing).
#[inline]
pub(crate) fn threshold_for(p: f64) -> u64 {
    if p <= 0.0 {
        0
    } else if p >= 1.0 {
        u64::MAX
    } else {
        (p * TWO_POW_64) as u64
    }
}

/// Derives a decorrelated seed from a base seed and a stream index (one
/// golden-gamma stride per index) — used by campaign pricing to give
/// each perspective its own common-random-number stream.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    base.wrapping_add(index.wrapping_mul(GAMMA))
}

/// One stochastic component of a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompDraw {
    /// RNG stream offset: `(model_component_index + 1)·γ'`. Keyed by the
    /// *model* index, not the slot, so the draw for a component does not
    /// depend on which other components survived constant folding.
    stream: u64,
    /// The component is up in a lane iff its draw is `< threshold`
    /// (`threshold ≈ p·2⁶⁴`; relative quantization error ≤ 2⁻⁵³). The
    /// sentinel `u64::MAX` means certainly up, `0` certainly down —
    /// both are decided without mixing.
    threshold: u64,
}

impl CompDraw {
    /// The up/down draw for one global trial index.
    #[inline(always)]
    fn up(&self, seed: u64, trial: u64) -> bool {
        if self.threshold == u64::MAX {
            return true;
        }
        let key = seed
            .wrapping_add(trial.wrapping_mul(GAMMA))
            .wrapping_add(self.stream);
        mix(key) < self.threshold
    }

    /// 64 consecutive trials packed one per bit lane (lane `l` holds
    /// trial `base_trial + l`) — the narrow (one-word) packing step.
    #[inline(always)]
    fn pack(&self, seed: u64, base_trial: u64) -> u64 {
        if self.threshold == 0 {
            return 0;
        }
        if self.threshold == u64::MAX {
            return !0;
        }
        let mut key = seed
            .wrapping_add(base_trial.wrapping_mul(GAMMA))
            .wrapping_add(self.stream);
        let mut word = 0u64;
        for lane in 0..64u64 {
            word |= u64::from(mix(key) < self.threshold) << lane;
            key = key.wrapping_add(GAMMA);
        }
        word
    }
}

// ---------------------------------------------------------------------------
// Wide packing kernel: one copy per instruction set, dispatched at runtime.
// ---------------------------------------------------------------------------

/// Packs the draw words of the listed slots for one wide block (trials
/// `base_trial .. base_trial + 512`) into `words` (slot-major,
/// [`WIDE_WORDS`] words per slot). The loop is written so the mix /
/// compare stage is a pure function of the lane index — a constant-stride
/// Weyl counter — which the vectorized instantiations below turn into
/// straight-line SIMD.
#[inline(always)]
fn pack_slots_kernel(
    draws: &[CompDraw],
    slots: &[u32],
    seed: u64,
    base_trial: u64,
    words: &mut [u64],
) {
    for &slot in slots {
        let draw = &draws[slot as usize];
        let out = &mut words[slot as usize * WIDE_WORDS..][..WIDE_WORDS];
        if draw.threshold == 0 {
            out.fill(0);
            continue;
        }
        if draw.threshold == u64::MAX {
            out.fill(!0);
            continue;
        }
        let key0 = seed
            .wrapping_add(base_trial.wrapping_mul(GAMMA))
            .wrapping_add(draw.stream);
        let mut bits = [0u64; 64];
        for (w, word_out) in out.iter_mut().enumerate() {
            let base = key0.wrapping_add(((w * 64) as u64).wrapping_mul(GAMMA));
            for (lane, bit) in bits.iter_mut().enumerate() {
                let key = base.wrapping_add((lane as u64).wrapping_mul(GAMMA));
                *bit = u64::from(mix(key) < draw.threshold);
            }
            let mut word = 0u64;
            for (lane, bit) in bits.iter().enumerate() {
                word |= bit << lane;
            }
            *word_out = word;
        }
    }
}

/// The wide packing entry point: `(draws, slots, seed, base_trial, out)`.
type PackSlotsFn = unsafe fn(&[CompDraw], &[u32], u64, u64, &mut [u64]);

/// Portable instantiation (whatever the build target enables).
///
/// # Safety
/// Unconditionally safe; `unsafe fn` only to share the dispatch type
/// with the feature-gated instantiations.
#[allow(unsafe_code)]
unsafe fn pack_slots_portable(
    draws: &[CompDraw],
    slots: &[u32],
    seed: u64,
    base_trial: u64,
    words: &mut [u64],
) {
    pack_slots_kernel(draws, slots, seed, base_trial, words);
}

/// AVX2 instantiation of the same loop (4 × u64 lanes).
///
/// # Safety
/// Caller must have verified `avx2` support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn pack_slots_avx2(
    draws: &[CompDraw],
    slots: &[u32],
    seed: u64,
    base_trial: u64,
    words: &mut [u64],
) {
    pack_slots_kernel(draws, slots, seed, base_trial, words);
}

/// AVX-512 instantiation (8 × u64 lanes; `avx512dq` supplies the native
/// 64-bit vector multiply the SplitMix64 finalizer leans on).
///
/// # Safety
/// Caller must have verified `avx512f`/`avx512dq` (+`bw`/`vl`) support
/// at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512bw,avx512vl")]
#[allow(unsafe_code)]
unsafe fn pack_slots_avx512(
    draws: &[CompDraw],
    slots: &[u32],
    seed: u64,
    base_trial: u64,
    words: &mut [u64],
) {
    pack_slots_kernel(draws, slots, seed, base_trial, words);
}

/// Picks the widest packing kernel the host supports, once per process.
/// Every instantiation runs the identical loop over the identical
/// counters, so the pick affects speed only — never a draw bit.
fn pack_slots_dispatch() -> (&'static str, PackSlotsFn) {
    static CHOSEN: std::sync::OnceLock<(&'static str, PackSlotsFn)> = std::sync::OnceLock::new();
    *CHOSEN.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx512vl")
            {
                return ("avx512", pack_slots_avx512 as PackSlotsFn);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return ("avx2", pack_slots_avx2 as PackSlotsFn);
            }
        }
        ("portable", pack_slots_portable as PackSlotsFn)
    })
}

fn pack_slots_fn() -> PackSlotsFn {
    pack_slots_dispatch().1
}

/// The one unsafe expression in the crate, behind a safe face.
#[allow(unsafe_code)]
#[inline(always)]
fn pack_with(
    pack: PackSlotsFn,
    draws: &[CompDraw],
    slots: &[u32],
    seed: u64,
    base_trial: u64,
    words: &mut [u64],
) {
    // SAFETY: every `PackSlotsFn` value originates in
    // `pack_slots_dispatch`, which returns a feature-gated instantiation
    // only after runtime detection of the features it was compiled for;
    // the portable instantiation has no feature requirement at all.
    unsafe { pack(draws, slots, seed, base_trial, words) }
}

/// Human-readable name of the packing kernel the host dispatches to
/// (`"avx512"`, `"avx2"`, or `"portable"`) — recorded by benchmarks.
pub fn wide_kernel_name() -> &'static str {
    pack_slots_dispatch().0
}

/// A compiled bit-sliced Monte-Carlo program: the flat word encoding of
/// one perspective's structure function over its stochastic components.
///
/// Compile once per `(epoch, perspective)` (the server embeds the program
/// in its cache entry), then [`run`](McProgram::run) as often as needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McProgram {
    /// One entry per drawn component slot.
    draws: Vec<CompDraw>,
    /// Model component index per slot (parallel to `draws`) — the key
    /// [`McProgram::with_thresholds`] rewrites by.
    slot_comp: Vec<u32>,
    /// Flat slot ids; each path is a span of this.
    path_slots: Vec<u32>,
    /// `[start, end)` spans into `path_slots`, one per surviving path.
    paths: Vec<(u32, u32)>,
    /// `[start, end)` spans into `paths`, one per surviving mapping pair.
    pairs: Vec<(u32, u32)>,
    /// Some pair lost every path to constant folding: the service is
    /// certainly down and the estimate is exactly 0.
    dead: bool,
}

/// Reusable per-worker scratch: the packed draw words of the current
/// wide block (slot-major, [`WIDE_WORDS`] words per slot) plus the slot
/// worklist of the common-random-number path. One scratch can serve any
/// number of programs of any shape — every run entry point resizes it —
/// so a campaign worker allocates it once and reuses it across every
/// (scenario, perspective) it prices.
#[derive(Debug, Default, Clone)]
pub struct McScratch {
    words: Vec<u64>,
    /// Slots that must be packed fresh (all of them on the plain path;
    /// only the perturbed ones when running against a draw table).
    fresh: Vec<u32>,
    /// Threshold-overlaid draw vector of the clone-free scenario runs
    /// ([`McProgram::run_thresholds`] /
    /// [`McProgram::run_with_table_thresholds`]).
    draws: Vec<CompDraw>,
}

impl McScratch {
    fn ensure(&mut self, program: &McProgram) {
        self.words.resize(program.draws.len() * WIDE_WORDS, 0);
    }
}

/// Packed draw words for every slot of a program over a fixed
/// `(seed, samples)` grid — the shared baseline stream of a
/// common-random-number campaign. Keys are `(stream, threshold)` pairs:
/// a later program reuses a slot's words iff its key matches, so
/// perturbing a component (threshold rewrite) transparently invalidates
/// exactly that component's cache line.
#[derive(Debug, Clone)]
pub struct DrawTable {
    seed: u64,
    samples: usize,
    /// Words per slot (`wide_blocks × WIDE_WORDS`).
    words_per_slot: usize,
    /// `(stream, threshold)` the slot's words were packed for.
    keys: Vec<(u64, u64)>,
    /// Slot-major packed words.
    words: Vec<u64>,
}

impl DrawTable {
    /// The seed the table was drawn with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The sample count the table covers.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Total `u64` words held (memory footprint / 8 bytes).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }
}

/// Per-slot parameter posteriors of a program — the block-resampling
/// input of [`McProgram::run_posterior`]. Built by
/// [`McProgram::posterior_sampler`] from the per-model-component
/// posterior vector an observation overlay produced
/// ([`crate::params::overlay_model`]); components without a posterior
/// keep their fixed point-estimate threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct PosteriorSampler {
    /// `(slot, model component index, posterior)` triples, slot-sorted.
    slots: Vec<(u32, u32, PosteriorComponent)>,
}

impl PosteriorSampler {
    /// `true` when no slot resamples — the posterior run then degrades
    /// bit-for-bit to the point-estimate run.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of slots drawing from a parameter posterior.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Rewrites the thresholds of the posterior-bearing slots for one
    /// wide block. The two uniforms behind each slot's availability draw
    /// are counter-based — pure functions of `(seed, wide_block,
    /// component)` under distinct salts — so any partition of the block
    /// range resamples identically: worker count and partitioning can
    /// never change a draw bit.
    fn resample(&self, seed: u64, wide_block: u64, draws: &mut [CompDraw]) {
        for &(slot, comp, post) in &self.slots {
            let base = seed
                .wrapping_add(wide_block.wrapping_mul(GAMMA))
                .wrapping_add((comp as u64 + 1).wrapping_mul(STREAM));
            let u_fail = unit_open(mix(base ^ POSTERIOR_FAIL_SALT));
            let u_repair = unit_open(mix(base ^ POSTERIOR_REPAIR_SALT));
            draws[slot as usize].threshold =
                threshold_for(post.sample_availability(u_fail, u_repair));
        }
    }
}

/// Partition-invariant success accumulator of a posterior-resampled run.
///
/// Every field is an integer sum over blocks, so merging per-worker (or
/// per-partition) accumulators in any order reproduces the
/// single-threaded totals exactly — no float summation order to drift.
/// Full 512-trial blocks additionally record per-block success moments,
/// from which [`PosteriorAccum::interval95`] forms the posterior
/// predictive interval: block means vary with both the Bernoulli noise
/// *and* the per-block parameter draws, so their spread is the honest
/// total uncertainty.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PosteriorAccum {
    /// Successes over every evaluated trial.
    pub successes: u64,
    /// Full (512-trial) blocks evaluated.
    pub full_blocks: u64,
    /// Σ successes over full blocks.
    pub block_sum: u64,
    /// Σ successes² over full blocks.
    pub block_sum_sq: u128,
    /// Successes of the ragged tail block, if any.
    pub tail_successes: u64,
}

impl PosteriorAccum {
    /// Folds another partition's accumulator in (field-wise integer
    /// sums — order-independent).
    pub fn merge(&mut self, other: &PosteriorAccum) {
        self.successes += other.successes;
        self.full_blocks += other.full_blocks;
        self.block_sum += other.block_sum;
        self.block_sum_sq += other.block_sum_sq;
        self.tail_successes += other.tail_successes;
    }

    fn record(&mut self, successes: u64, full: bool) {
        self.successes += successes;
        if full {
            self.full_blocks += 1;
            self.block_sum += successes;
            self.block_sum_sq += (successes as u128) * (successes as u128);
        } else {
            self.tail_successes += successes;
        }
    }

    /// The point result over all evaluated trials (same reduction as
    /// [`mc_result_from`]).
    pub fn result(&self, samples: usize) -> MonteCarloResult {
        result_from(self.successes, samples)
    }

    /// 95% posterior predictive interval on the availability: the
    /// estimate ± 1.96 standard errors of the block means (each full
    /// block is one draw from the posterior predictive distribution).
    /// With fewer than two full blocks there is no between-block spread
    /// to measure, so the Wilson interval of the point result stands in.
    pub fn interval95(&self, samples: usize) -> (f64, f64) {
        let estimate = self.successes as f64 / samples as f64;
        if self.full_blocks < 2 {
            return self.result(samples).confidence_95();
        }
        let blocks = self.full_blocks as f64;
        let mean = self.block_sum as f64 / blocks;
        // Σx² − B·mean² in f64: block successes are ≤ 512, so the u128
        // sum is far below f64's exact-integer range for any real run.
        let ss = self.block_sum_sq as f64 - blocks * mean * mean;
        let var = (ss / (blocks - 1.0)).max(0.0);
        let se = (var / blocks).sqrt() / WIDE_TRIALS as f64;
        (
            (estimate - 1.96 * se).max(0.0),
            (estimate + 1.96 * se).min(1.0),
        )
    }
}

impl McProgram {
    /// Compiles path-set systems (one entry per mapping pair, each a list
    /// of component-index path sets) against an availability vector.
    pub fn compile<'a>(
        availability: &[f64],
        systems: impl IntoIterator<Item = &'a [Vec<usize>]>,
    ) -> Self {
        let mut slot_of: Vec<u32> = vec![u32::MAX; availability.len()];
        let mut program = McProgram {
            draws: Vec::new(),
            slot_comp: Vec::new(),
            path_slots: Vec::new(),
            paths: Vec::new(),
            pairs: Vec::new(),
            dead: false,
        };
        let mut path_comps: Vec<usize> = Vec::new();
        for sets in systems {
            let pair_lo = program.paths.len();
            let mut certainly_up = false;
            for set in sets {
                // Constant-fold the path: drop perfect components, drop
                // the path if any component can never be up.
                path_comps.clear();
                let mut viable = true;
                for &comp in set {
                    let p = availability[comp];
                    if p <= 0.0 {
                        viable = false;
                        break;
                    }
                    if p < 1.0 && !path_comps.contains(&comp) {
                        path_comps.push(comp);
                    }
                }
                if !viable {
                    continue;
                }
                if path_comps.is_empty() {
                    // A path with no stochastic component always works, so
                    // the whole pair does.
                    certainly_up = true;
                    break;
                }
                let lo = program.path_slots.len() as u32;
                for &comp in &path_comps {
                    let slot = program.intern_slot(&mut slot_of, comp, availability[comp]);
                    program.path_slots.push(slot);
                }
                program.paths.push((lo, program.path_slots.len() as u32));
            }
            if certainly_up {
                program.paths.truncate(pair_lo);
                continue;
            }
            if program.paths.len() == pair_lo {
                program.dead = true;
            }
            program
                .pairs
                .push((pair_lo as u32, program.paths.len() as u32));
        }
        program
    }

    /// Compiles **without constant folding**: every component referenced
    /// by any path keeps a drawn slot (degenerate probabilities become
    /// the 0 / `u64::MAX` sentinels, decided at pack time without
    /// mixing), and every path and pair keeps its span. The program's
    /// shape is therefore a function of the path structure alone — a
    /// perturbed probability vector maps onto the same slots via
    /// [`McProgram::with_thresholds`], which is what lets a
    /// common-random-number sweep share one [`DrawTable`] across its
    /// whole scenario list.
    pub fn compile_unfolded<'a>(
        availability: &[f64],
        systems: impl IntoIterator<Item = &'a [Vec<usize>]>,
    ) -> Self {
        let mut slot_of: Vec<u32> = vec![u32::MAX; availability.len()];
        let mut program = McProgram {
            draws: Vec::new(),
            slot_comp: Vec::new(),
            path_slots: Vec::new(),
            paths: Vec::new(),
            pairs: Vec::new(),
            dead: false,
        };
        let mut path_comps: Vec<usize> = Vec::new();
        for sets in systems {
            let pair_lo = program.paths.len();
            for set in sets {
                path_comps.clear();
                for &comp in set {
                    if !path_comps.contains(&comp) {
                        path_comps.push(comp);
                    }
                }
                let lo = program.path_slots.len() as u32;
                for &comp in &path_comps {
                    let slot = program.intern_slot(&mut slot_of, comp, availability[comp]);
                    program.path_slots.push(slot);
                }
                program.paths.push((lo, program.path_slots.len() as u32));
            }
            program
                .pairs
                .push((pair_lo as u32, program.paths.len() as u32));
        }
        program
    }

    fn intern_slot(&mut self, slot_of: &mut [u32], comp: usize, p: f64) -> u32 {
        if slot_of[comp] == u32::MAX {
            let slot = self.draws.len() as u32;
            slot_of[comp] = slot;
            self.draws.push(CompDraw {
                stream: (comp as u64 + 1).wrapping_mul(STREAM),
                threshold: threshold_for(p),
            });
            self.slot_comp.push(comp as u32);
            slot
        } else {
            slot_of[comp]
        }
    }

    /// A copy of this program with every slot's threshold rewritten from
    /// `probs` (indexed by model component, like the compile input). The
    /// shape — slots, paths, pairs — is untouched, so the copy stays
    /// key-compatible with any [`DrawTable`] drawn from this program:
    /// slots whose probability did not move keep their cache line.
    pub fn with_thresholds(&self, probs: &[f64]) -> McProgram {
        let mut rewritten = self.clone();
        for (slot, &comp) in self.slot_comp.iter().enumerate() {
            rewritten.draws[slot].threshold = threshold_for(probs[comp as usize]);
        }
        rewritten
    }

    /// Number of stochastic components the program draws per trial block.
    pub fn component_count(&self) -> usize {
        self.draws.len()
    }

    /// `u64` words a [`DrawTable`] over `samples` trials would hold —
    /// callers use this to budget table memory before building one.
    pub fn table_words(&self, samples: usize) -> usize {
        self.draws.len() * samples.div_ceil(WIDE_TRIALS) * WIDE_WORDS
    }

    /// A constant estimate, when the structure function folded to one:
    /// `Some(0.0)` when some pair has no working path, `Some(1.0)` when
    /// every pair is certainly up.
    pub fn constant_estimate(&self) -> Option<f64> {
        if self.dead {
            Some(0.0)
        } else if self.pairs.is_empty() {
            Some(1.0)
        } else {
            None
        }
    }

    /// A scratch buffer sized for this program (reused across blocks; the
    /// parallel runner keeps one per worker).
    pub fn scratch(&self) -> McScratch {
        McScratch {
            words: vec![0; self.draws.len() * WIDE_WORDS],
            fresh: Vec::with_capacity(self.draws.len()),
            draws: Vec::new(),
        }
    }

    /// Evaluates one 64-trial block (trials `block·64 .. block·64 + 64`)
    /// over per-word draw storage with stride `stride` and word offset
    /// `w`, returning the service word (bit lane = trial up). Early exits
    /// are exact: draws are pure functions of their coordinates, so
    /// skipping them cannot skew later blocks.
    #[inline]
    fn service_word(&self, words: &[u64], w: usize, stride: usize) -> u64 {
        let mut service = !0u64;
        for &(pair_lo, pair_hi) in &self.pairs {
            let mut pair_up = 0u64;
            for &(lo, hi) in &self.paths[pair_lo as usize..pair_hi as usize] {
                let mut path_up = !0u64;
                for &slot in &self.path_slots[lo as usize..hi as usize] {
                    path_up &= words[slot as usize * stride + w];
                    if path_up == 0 {
                        break;
                    }
                }
                pair_up |= path_up;
                if pair_up == !0u64 {
                    break;
                }
            }
            service &= pair_up;
            if service == 0 {
                break;
            }
        }
        service
    }

    /// Successes among the 64-trial words of one **wide** block (trials
    /// `wide_block·512 .. wide_block·512 + 512`, intersected with
    /// `[0, samples)`), packing all slots through the dispatched kernel.
    fn wide_successes(
        &self,
        seed: u64,
        wide_block: u64,
        samples: usize,
        pack: PackSlotsFn,
        scratch: &mut McScratch,
    ) -> u64 {
        let base_trial = wide_block * WIDE_TRIALS as u64;
        pack_with(
            pack,
            &self.draws,
            &scratch.fresh,
            seed,
            base_trial,
            &mut scratch.words,
        );
        self.masked_successes(&scratch.words, WIDE_WORDS, base_trial, samples)
    }

    /// Popcounts the service words of one wide block's draw storage,
    /// masking lanes at or beyond `samples`.
    #[inline]
    fn masked_successes(
        &self,
        words: &[u64],
        stride: usize,
        base_trial: u64,
        samples: usize,
    ) -> u64 {
        let mut ok = 0u64;
        for w in 0..WIDE_WORDS {
            let word_base = base_trial as usize + w * 64;
            if word_base >= samples {
                break;
            }
            let lanes = samples - word_base;
            let mask = if lanes >= 64 {
                !0u64
            } else {
                (1u64 << lanes) - 1
            };
            ok += u64::from((self.service_word(words, w, stride) & mask).count_ones());
        }
        ok
    }

    /// Bit-sliced parallel Monte-Carlo run: exactly `samples` trials over
    /// 512-trial wide blocks. `workers == 1` (or a single block) runs
    /// inline on the calling thread — no spawn, no join. Larger counts
    /// fan `workers` crossbeam threads (0 = available parallelism) over a
    /// shared work-stealing block cursor, one reusable scratch buffer per
    /// worker, so a straggler never serializes the tail the way static
    /// ranges did. Deterministic: the successes of a block depend only on
    /// `(seed, block)`, and summation over blocks is partition-invariant,
    /// so the estimate is bit-identical for any `workers` value — and
    /// bit-identical to the narrow and scalar twins.
    pub fn run(&self, samples: usize, workers: usize, seed: u64) -> MonteCarloResult {
        assert!(samples > 0, "need at least one sample");
        if let Some(estimate) = self.constant_estimate() {
            return MonteCarloResult {
                estimate,
                std_error: 0.0,
                samples,
            };
        }
        let wide_blocks = wide_block_count(samples);
        let workers = resolve_workers(workers).min(wide_blocks as usize).max(1);
        let cursor = AtomicU64::new(0);
        if workers == 1 {
            let mut scratch = self.scratch();
            let successes = self.run_partial(samples, seed, &cursor, wide_blocks, &mut scratch);
            return result_from(successes, samples);
        }
        let chunk = steal_chunk(wide_blocks, workers);
        let successes: u64 = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut scratch = self.scratch();
                        self.run_partial(samples, seed, &cursor, chunk, &mut scratch)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        })
        .expect("crossbeam scope");
        result_from(successes, samples)
    }

    /// Work-stealing partial run: claims `chunk`-sized spans of the
    /// `samples`-trial grid's wide blocks from the shared `cursor` until
    /// it is exhausted, returning the successes of the claimed blocks.
    /// Any set of callers sharing one cursor — scoped threads inside
    /// [`run`](McProgram::run), or the engine's persistent worker pool —
    /// partitions the block range exactly once, and because summation
    /// over blocks is partition-invariant the summed total is
    /// bit-identical to a single-threaded run. Reduce the summed total
    /// with [`mc_result_from`].
    pub fn run_partial(
        &self,
        samples: usize,
        seed: u64,
        cursor: &AtomicU64,
        chunk: u64,
        scratch: &mut McScratch,
    ) -> u64 {
        let chunk = chunk.max(1);
        let wide_blocks = wide_block_count(samples);
        let pack = pack_slots_fn();
        scratch.ensure(self);
        scratch.fresh.clear();
        // No table here: every slot packs fresh.
        scratch.fresh.extend(0..self.draws.len() as u32);
        let mut ok = 0u64;
        loop {
            let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
            if lo >= wide_blocks {
                break;
            }
            let hi = (lo + chunk).min(wide_blocks);
            for wide_block in lo..hi {
                ok += self.wide_successes(seed, wide_block, samples, pack, scratch);
            }
        }
        ok
    }

    /// Binds per-model-component posteriors (as produced by
    /// [`crate::params::overlay_model`], indexed like the compile input)
    /// to this program's slots. Components that folded away, or whose
    /// entry is `None`, do not resample. Callers that must pin a
    /// component to its point estimate (e.g. a campaign perturbation
    /// overriding an observation) blank its entry before calling.
    pub fn posterior_sampler(&self, posteriors: &[Option<PosteriorComponent>]) -> PosteriorSampler {
        let mut slots = Vec::new();
        for (slot, &comp) in self.slot_comp.iter().enumerate() {
            if let Some(post) = posteriors.get(comp as usize).copied().flatten() {
                slots.push((slot as u32, comp, post));
            }
        }
        PosteriorSampler { slots }
    }

    /// The posterior-resampling twin of
    /// [`run_partial`](McProgram::run_partial): before packing each wide
    /// block, the `sampler`'s slots redraw their availability from the
    /// parameter posterior (counter-based on `(seed, block, component)`),
    /// so the 512 trials of a block share one parameter draw and blocks
    /// are independent draws from the posterior predictive distribution.
    /// Block successes fold into `accum` instead of a bare sum so the
    /// caller can form the predictive interval; partition invariance
    /// holds exactly as for `run_partial` (merge the accumulators in any
    /// order). With an empty sampler every threshold stays at its point
    /// estimate and the evaluated bits are identical to `run_partial`.
    pub fn run_posterior_partial(
        &self,
        samples: usize,
        seed: u64,
        cursor: &AtomicU64,
        chunk: u64,
        scratch: &mut McScratch,
        sampler: &PosteriorSampler,
        accum: &mut PosteriorAccum,
    ) {
        let chunk = chunk.max(1);
        let wide_blocks = wide_block_count(samples);
        let pack = pack_slots_fn();
        scratch.ensure(self);
        scratch.fresh.clear();
        scratch.fresh.extend(0..self.draws.len() as u32);
        let mut draws = std::mem::take(&mut scratch.draws);
        draws.clear();
        draws.extend_from_slice(&self.draws);
        loop {
            let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
            if lo >= wide_blocks {
                break;
            }
            let hi = (lo + chunk).min(wide_blocks);
            for wide_block in lo..hi {
                sampler.resample(seed, wide_block, &mut draws);
                let base_trial = wide_block * WIDE_TRIALS as u64;
                pack_with(
                    pack,
                    &draws,
                    &scratch.fresh,
                    seed,
                    base_trial,
                    &mut scratch.words,
                );
                let ok = self.masked_successes(&scratch.words, WIDE_WORDS, base_trial, samples);
                let full = base_trial as usize + WIDE_TRIALS <= samples;
                accum.record(ok, full);
            }
        }
        scratch.draws = draws;
    }

    /// Posterior-resampled parallel run: like [`run`](McProgram::run),
    /// but each wide block draws its component availabilities from the
    /// parameter posteriors in `sampler`, and the returned interval is
    /// the 95% posterior *predictive* interval — parameter uncertainty
    /// and sampling noise combined — rather than the Bernoulli-only
    /// Wilson interval. Bit-identical for any `workers` value, and with
    /// an empty sampler the estimate is bit-identical to `run`.
    pub fn run_posterior(
        &self,
        samples: usize,
        workers: usize,
        seed: u64,
        sampler: &PosteriorSampler,
    ) -> (MonteCarloResult, (f64, f64)) {
        assert!(samples > 0, "need at least one sample");
        if let Some(estimate) = self.constant_estimate() {
            let result = MonteCarloResult {
                estimate,
                std_error: 0.0,
                samples,
            };
            return (result, (estimate, estimate));
        }
        let wide_blocks = wide_block_count(samples);
        let workers = resolve_workers(workers).min(wide_blocks as usize).max(1);
        let cursor = AtomicU64::new(0);
        let mut accum = PosteriorAccum::default();
        if workers == 1 {
            let mut scratch = self.scratch();
            self.run_posterior_partial(
                samples,
                seed,
                &cursor,
                wide_blocks,
                &mut scratch,
                sampler,
                &mut accum,
            );
        } else {
            let chunk = steal_chunk(wide_blocks, workers);
            let partials: Vec<PosteriorAccum> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|_| {
                            let mut scratch = self.scratch();
                            let mut part = PosteriorAccum::default();
                            self.run_posterior_partial(
                                samples,
                                seed,
                                &cursor,
                                chunk,
                                &mut scratch,
                                sampler,
                                &mut part,
                            );
                            part
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
            .expect("crossbeam scope");
            for part in &partials {
                accum.merge(part);
            }
        }
        (accum.result(samples), accum.interval95(samples))
    }

    /// The campaign twin of [`run_posterior`]: prices a perturbed
    /// probability vector (scratch-held threshold overlay, exactly like
    /// [`run_thresholds`](McProgram::run_thresholds)) while the
    /// `sampler`'s slots resample per block *on top of* the overlay.
    /// The sampler must not cover perturbed components — a perturbation
    /// overrides an observation — which the caller enforces by blanking
    /// those entries before [`posterior_sampler`](McProgram::posterior_sampler).
    /// Single-threaded (campaign workers parallelize across scenarios).
    pub fn run_posterior_thresholds(
        &self,
        probs: &[f64],
        samples: usize,
        seed: u64,
        sampler: &PosteriorSampler,
        scratch: &mut McScratch,
    ) -> (MonteCarloResult, (f64, f64)) {
        assert!(samples > 0, "need at least one sample");
        if let Some(estimate) = self.constant_estimate() {
            let result = MonteCarloResult {
                estimate,
                std_error: 0.0,
                samples,
            };
            return (result, (estimate, estimate));
        }
        let mut draws = std::mem::take(&mut scratch.draws);
        self.overlay_thresholds(probs, &mut draws);
        let pack = pack_slots_fn();
        scratch.ensure(self);
        scratch.fresh.clear();
        scratch.fresh.extend(0..draws.len() as u32);
        let wide_blocks = samples.div_ceil(WIDE_TRIALS);
        let mut accum = PosteriorAccum::default();
        for wide_block in 0..wide_blocks {
            sampler.resample(seed, wide_block as u64, &mut draws);
            let base_trial = (wide_block * WIDE_TRIALS) as u64;
            pack_with(
                pack,
                &draws,
                &scratch.fresh,
                seed,
                base_trial,
                &mut scratch.words,
            );
            let ok = self.masked_successes(&scratch.words, WIDE_WORDS, base_trial, samples);
            accum.record(ok, base_trial as usize + WIDE_TRIALS <= samples);
        }
        scratch.draws = draws;
        (accum.result(samples), accum.interval95(samples))
    }

    /// Packs every slot's draw words for the whole `(seed, samples)`
    /// grid once. The resulting table backs
    /// [`run_with_table`](McProgram::run_with_table) — re-evaluating
    /// this program (or a [`with_thresholds`](McProgram::with_thresholds)
    /// rewrite of it) against the table skips the mix work of every slot
    /// whose key still matches.
    pub fn draw_table(&self, samples: usize, seed: u64) -> DrawTable {
        assert!(samples > 0, "need at least one sample");
        let pack = pack_slots_fn();
        let wide_blocks = samples.div_ceil(WIDE_TRIALS);
        let words_per_slot = wide_blocks * WIDE_WORDS;
        let mut table = DrawTable {
            seed,
            samples,
            words_per_slot,
            keys: self.draws.iter().map(|d| (d.stream, d.threshold)).collect(),
            words: vec![0; self.draws.len() * words_per_slot],
        };
        let mut scratch = self.scratch();
        scratch.fresh.clear();
        scratch.fresh.extend(0..self.draws.len() as u32);
        for wide_block in 0..wide_blocks {
            let base_trial = (wide_block * WIDE_TRIALS) as u64;
            pack_with(
                pack,
                &self.draws,
                &scratch.fresh,
                seed,
                base_trial,
                &mut scratch.words,
            );
            for slot in 0..self.draws.len() {
                let src = &scratch.words[slot * WIDE_WORDS..][..WIDE_WORDS];
                let dst_lo = slot * words_per_slot + wide_block * WIDE_WORDS;
                table.words[dst_lo..dst_lo + WIDE_WORDS].copy_from_slice(src);
            }
        }
        table
    }

    /// Single-threaded run against a shared [`DrawTable`]: slots whose
    /// `(stream, threshold)` key matches the table reuse its packed
    /// words; everything else (the perturbed components of a scenario)
    /// is packed fresh. Returns the result plus the number of `u64`
    /// draw words served from the table. **The table is a cache, not a
    /// semantic input**: the result is bit-identical to
    /// `self.run(table.samples(), 1, table.seed())`.
    ///
    /// The program must be shape-compatible with the table (same slot
    /// list — i.e. this program or a `with_thresholds` rewrite of the
    /// one that built it).
    pub fn run_with_table(
        &self,
        table: &DrawTable,
        scratch: &mut McScratch,
    ) -> (MonteCarloResult, u64) {
        let McScratch { words, fresh, .. } = scratch;
        self.table_run(&self.draws, table, words, fresh)
    }

    /// The clone-free twin of
    /// `self.with_thresholds(probs).run_with_table(table, scratch)`: the
    /// threshold overlay is written into a scratch-held draw vector
    /// instead of a cloned program, so an N-scenario
    /// common-random-number sweep allocates nothing per scenario once
    /// its worker's scratch is warm. Bit-identical to the
    /// clone-then-run form, including the reused-word count.
    pub fn run_with_table_thresholds(
        &self,
        table: &DrawTable,
        probs: &[f64],
        scratch: &mut McScratch,
    ) -> (MonteCarloResult, u64) {
        let mut draws = std::mem::take(&mut scratch.draws);
        self.overlay_thresholds(probs, &mut draws);
        let McScratch { words, fresh, .. } = scratch;
        let out = self.table_run(&draws, table, words, fresh);
        scratch.draws = draws;
        out
    }

    /// The clone-free twin of
    /// `self.with_thresholds(probs).run(samples, 1, seed)` — the
    /// no-table fallback of campaign pricing. Single-threaded (campaign
    /// workers parallelize across scenarios), reusing `scratch` for the
    /// overlaid draw vector and the packed words. Bit-identical to the
    /// clone-then-run form.
    pub fn run_thresholds(
        &self,
        probs: &[f64],
        samples: usize,
        seed: u64,
        scratch: &mut McScratch,
    ) -> MonteCarloResult {
        assert!(samples > 0, "need at least one sample");
        if let Some(estimate) = self.constant_estimate() {
            return MonteCarloResult {
                estimate,
                std_error: 0.0,
                samples,
            };
        }
        let mut draws = std::mem::take(&mut scratch.draws);
        self.overlay_thresholds(probs, &mut draws);
        let pack = pack_slots_fn();
        scratch.ensure(self);
        scratch.fresh.clear();
        scratch.fresh.extend(0..draws.len() as u32);
        let wide_blocks = samples.div_ceil(WIDE_TRIALS);
        let mut successes = 0u64;
        for wide_block in 0..wide_blocks {
            let base_trial = (wide_block * WIDE_TRIALS) as u64;
            pack_with(
                pack,
                &draws,
                &scratch.fresh,
                seed,
                base_trial,
                &mut scratch.words,
            );
            successes += self.masked_successes(&scratch.words, WIDE_WORDS, base_trial, samples);
        }
        scratch.draws = draws;
        result_from(successes, samples)
    }

    /// Fills `draws` with this program's slots, thresholds rewritten
    /// from `probs` (indexed by model component) — the allocation-free
    /// core of [`with_thresholds`](McProgram::with_thresholds).
    fn overlay_thresholds(&self, probs: &[f64], draws: &mut Vec<CompDraw>) {
        draws.clear();
        draws.extend_from_slice(&self.draws);
        for (slot, &comp) in self.slot_comp.iter().enumerate() {
            draws[slot].threshold = threshold_for(probs[comp as usize]);
        }
    }

    /// Shared core of the draw-table runs: evaluates this program's
    /// structure function over `draws` (either `self.draws` or a
    /// threshold overlay of them) against the table.
    fn table_run(
        &self,
        draws: &[CompDraw],
        table: &DrawTable,
        words: &mut Vec<u64>,
        fresh: &mut Vec<u32>,
    ) -> (MonteCarloResult, u64) {
        assert_eq!(
            draws.len(),
            table.keys.len(),
            "draw table shape mismatch: {} slots vs {}",
            draws.len(),
            table.keys.len()
        );
        let samples = table.samples;
        if let Some(estimate) = self.constant_estimate() {
            return (
                MonteCarloResult {
                    estimate,
                    std_error: 0.0,
                    samples,
                },
                0,
            );
        }
        let pack = pack_slots_fn();
        words.resize(draws.len() * WIDE_WORDS, 0);
        fresh.clear();
        let mut cached_slots = 0u64;
        for (slot, draw) in draws.iter().enumerate() {
            if table.keys[slot] == (draw.stream, draw.threshold) {
                cached_slots += 1;
            } else {
                fresh.push(slot as u32);
            }
        }
        let wide_blocks = samples.div_ceil(WIDE_TRIALS);
        let mut successes = 0u64;
        for wide_block in 0..wide_blocks {
            let base_trial = (wide_block * WIDE_TRIALS) as u64;
            for (slot, draw) in draws.iter().enumerate() {
                if table.keys[slot] == (draw.stream, draw.threshold) {
                    let src_lo = slot * table.words_per_slot + wide_block * WIDE_WORDS;
                    words[slot * WIDE_WORDS..][..WIDE_WORDS]
                        .copy_from_slice(&table.words[src_lo..src_lo + WIDE_WORDS]);
                }
            }
            pack_with(pack, draws, fresh, seed_of(table), base_trial, words);
            successes += self.masked_successes(words, WIDE_WORDS, base_trial, samples);
        }
        let reused_words = cached_slots * wide_blocks as u64 * WIDE_WORDS as u64;
        (result_from(successes, samples), reused_words)
    }

    /// The one-word-at-a-time twin of [`run`](McProgram::run): the
    /// pre-wide-kernel executor, kept as a differential-testing reference
    /// — identical draws, identical structure function, 64 trials per
    /// step. The two must agree bit-for-bit.
    pub fn run_narrow(&self, samples: usize, workers: usize, seed: u64) -> MonteCarloResult {
        assert!(samples > 0, "need at least one sample");
        if let Some(estimate) = self.constant_estimate() {
            return MonteCarloResult {
                estimate,
                std_error: 0.0,
                samples,
            };
        }
        let blocks = samples.div_ceil(64) as u64;
        let workers = resolve_workers(workers).min(blocks as usize).max(1);
        let narrow_span = |words: &mut Vec<u64>, lo: u64, hi: u64| {
            let mut ok = 0u64;
            for block in lo..hi {
                let base_trial = block * 64;
                for (slot, draw) in self.draws.iter().enumerate() {
                    words[slot] = draw.pack(seed, base_trial);
                }
                let lanes = samples - block as usize * 64;
                let mask = if lanes >= 64 {
                    !0u64
                } else {
                    (1u64 << lanes) - 1
                };
                ok += u64::from((self.service_word(words, 0, 1) & mask).count_ones());
            }
            ok
        };
        let successes: u64 = if workers == 1 {
            let mut words = vec![0u64; self.draws.len()];
            narrow_span(&mut words, 0, blocks)
        } else {
            let cursor = AtomicU64::new(0);
            let chunk = steal_chunk(blocks, workers);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|_| {
                            let mut words = vec![0u64; self.draws.len()];
                            let mut ok = 0u64;
                            loop {
                                let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                                if lo >= blocks {
                                    break;
                                }
                                ok += narrow_span(&mut words, lo, (lo + chunk).min(blocks));
                            }
                            ok
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .sum()
            })
            .expect("crossbeam scope")
        };
        result_from(successes, samples)
    }

    /// The trial-at-a-time twin of [`run`](McProgram::run): identical
    /// draws (same counter-based coordinates), identical structure
    /// function, one trial per iteration. Exists to differential-test the
    /// bit-sliced executors — all must agree bit-for-bit.
    pub fn run_scalar(&self, samples: usize, seed: u64) -> MonteCarloResult {
        assert!(samples > 0, "need at least one sample");
        if let Some(estimate) = self.constant_estimate() {
            return MonteCarloResult {
                estimate,
                std_error: 0.0,
                samples,
            };
        }
        let mut successes = 0u64;
        for trial in 0..samples as u64 {
            let service_up = self.pairs.iter().all(|&(pair_lo, pair_hi)| {
                self.paths[pair_lo as usize..pair_hi as usize]
                    .iter()
                    .any(|&(lo, hi)| {
                        self.path_slots[lo as usize..hi as usize]
                            .iter()
                            .all(|&slot| self.draws[slot as usize].up(seed, trial))
                    })
            });
            successes += u64::from(service_up);
        }
        result_from(successes, samples)
    }
}

/// Number of 512-trial wide blocks a `samples`-trial run covers — the
/// unit of [`McProgram::run_partial`] work-stealing.
pub fn wide_block_count(samples: usize) -> u64 {
    samples.div_ceil(WIDE_TRIALS) as u64
}

/// Steal-chunk size for fanning `blocks` wide blocks over `workers`:
/// roughly eight claims per worker so stragglers rebalance, clamped to
/// `[1, 64]` so neither the claim rate nor the per-claim latency
/// degenerates. Chunking only changes which worker sums which blocks —
/// never the total — so any chunk size preserves bit-exactness.
pub fn steal_chunk(blocks: u64, workers: usize) -> u64 {
    (blocks / (workers.max(1) as u64 * 8)).clamp(1, 64)
}

/// Reduces the summed successes of a [`McProgram::run_partial`] fan-out
/// (or any other partition of a `samples`-trial grid) to the result
/// [`McProgram::run`] would return.
pub fn mc_result_from(successes: u64, samples: usize) -> MonteCarloResult {
    result_from(successes, samples)
}

/// `0` means "use every core the host offers".
fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
}

/// Borrow-friendly accessor (keeps `table_run`'s call shape tidy).
fn seed_of(table: &DrawTable) -> u64 {
    table.seed
}

fn result_from(successes: u64, samples: usize) -> MonteCarloResult {
    let estimate = successes as f64 / samples as f64;
    MonteCarloResult {
        estimate,
        std_error: (estimate * (1.0 - estimate) / samples as f64).sqrt(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdp::union_probability;

    fn compile(p: &[f64], systems: &[Vec<Vec<usize>>]) -> McProgram {
        McProgram::compile(p, systems.iter().map(Vec::as_slice))
    }

    fn compile_unfolded(p: &[f64], systems: &[Vec<Vec<usize>>]) -> McProgram {
        McProgram::compile_unfolded(p, systems.iter().map(Vec::as_slice))
    }

    #[test]
    fn estimate_is_bit_identical_for_any_worker_count() {
        let p = [0.9, 0.8, 0.7, 0.95];
        let systems = vec![vec![vec![0, 1], vec![0, 2]], vec![vec![3, 0]]];
        let program = compile(&p, &systems);
        // 10_001 is deliberately not a multiple of 512 (tail block).
        let reference = program.run(10_001, 1, 42);
        for workers in [2, 3, 5, 8, 64] {
            assert_eq!(program.run(10_001, workers, 42), reference);
        }
    }

    #[test]
    fn wide_equals_narrow_and_scalar_twins_exactly() {
        let p = [0.9, 0.8, 0.7];
        let systems = vec![vec![vec![0, 1], vec![0, 2]]];
        let program = compile(&p, &systems);
        for samples in [1, 63, 64, 65, 511, 512, 513, 1000, 4099] {
            for seed in [0, 7, 2013] {
                let wide = program.run(samples, 3, seed);
                assert_eq!(
                    wide,
                    program.run_narrow(samples, 2, seed),
                    "narrow twin diverged at samples={samples} seed={seed}"
                );
                assert_eq!(
                    wide,
                    program.run_scalar(samples, seed),
                    "scalar twin diverged at samples={samples} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn converges_to_exact_union_probability() {
        let p = [0.9, 0.8, 0.7];
        let sets = vec![vec![0, 1], vec![0, 2]];
        let exact = union_probability(&sets, &p);
        let mc = compile(&p, &[sets]).run(200_000, 4, 7);
        assert!(
            mc.covers(exact),
            "CI {:?} misses {exact}",
            mc.confidence_95()
        );
        assert!((mc.estimate - exact).abs() < 0.01);
    }

    #[test]
    fn shared_components_across_pairs_are_not_independent() {
        // Same cross-check as the scalar sampler: two pairs sharing
        // component 0 conjunct to p0·p1·p2, not (p0·p1)(p0·p2).
        let p = [0.6, 0.9, 0.9];
        let systems = vec![vec![vec![0, 1]], vec![vec![0, 2]]];
        let exact = 0.6 * 0.9 * 0.9;
        let naive = (0.6 * 0.9) * (0.6 * 0.9);
        let mc = compile(&p, &systems).run(400_000, 4, 13);
        assert!(
            mc.covers(exact),
            "CI {:?} misses {exact}",
            mc.confidence_95()
        );
        assert!(!mc.covers(naive), "must reject the naive product {naive}");
    }

    #[test]
    fn degenerate_structures_fold_to_constants() {
        let p = [0.5, 1.0, 0.0];
        // No pairs at all: certainly up.
        assert_eq!(compile(&p, &[]).constant_estimate(), Some(1.0));
        // One pair with no paths: certainly down.
        assert_eq!(compile(&p, &[vec![]]).constant_estimate(), Some(0.0));
        // A trivial (empty) path: the pair is certainly up.
        assert_eq!(compile(&p, &[vec![vec![]]]).constant_estimate(), Some(1.0));
        // A path of only perfect components folds to a trivial path.
        assert_eq!(
            compile(&p, &[vec![vec![1, 1]]]).constant_estimate(),
            Some(1.0)
        );
        // Every path blocked by a never-up component: certainly down.
        assert_eq!(
            compile(&p, &[vec![vec![0, 2], vec![2]]]).constant_estimate(),
            Some(0.0)
        );
        // The constants run without sampling and with zero error.
        let dead = compile(&p, &[vec![]]).run(1000, 2, 1);
        assert_eq!(
            (dead.estimate, dead.std_error, dead.samples),
            (0.0, 0.0, 1000)
        );
        let up = compile(&p, &[]).run_scalar(1000, 1);
        assert_eq!(up.estimate, 1.0);
    }

    #[test]
    fn unfolded_compile_prices_degenerates_identically() {
        // The unfolded program keeps degenerate components as 0 / MAX
        // sentinel slots; the estimates must match the folded constants.
        let p = [0.5, 1.0, 0.0];
        let folded = compile(&p, &[vec![vec![0, 1], vec![2]]]);
        let unfolded = compile_unfolded(&p, &[vec![vec![0, 1], vec![2]]]);
        assert_eq!(unfolded.component_count(), 3, "no slot folded away");
        for seed in [1, 9] {
            assert_eq!(
                folded.run(4096, 2, seed).estimate,
                unfolded.run(4096, 2, seed).estimate
            );
            assert_eq!(
                unfolded.run(4096, 3, seed),
                unfolded.run_scalar(4096, seed),
                "unfolded wide/scalar twins must agree"
            );
        }
        // A dead path (p=0 member) contributes nothing either way.
        let dead = compile_unfolded(&p, &[vec![vec![2]]]);
        assert_eq!(dead.run(512, 1, 3).estimate, 0.0);
    }

    #[test]
    fn with_thresholds_rewrites_only_probabilities() {
        let p = [0.9, 0.8, 0.7];
        let systems = vec![vec![vec![0, 1], vec![0, 2]]];
        let base = compile_unfolded(&p, &systems);
        // Kill component 1, degrade component 2.
        let perturbed = base.with_thresholds(&[0.9, 0.0, 0.35]);
        let direct = compile_unfolded(&[0.9, 0.0, 0.35], &systems);
        for seed in [2, 2013] {
            assert_eq!(perturbed.run(8192, 2, seed), direct.run(8192, 2, seed));
        }
        // The base program is untouched.
        assert_eq!(base, compile_unfolded(&p, &systems));
    }

    #[test]
    fn draw_table_is_a_pure_cache() {
        let p = [0.9, 0.8, 0.7, 0.6];
        let systems = vec![vec![vec![0, 1], vec![0, 2]], vec![vec![3, 0]]];
        let base = compile_unfolded(&p, &systems);
        // 5000 samples straddles several wide blocks with a ragged tail.
        let table = base.draw_table(5000, 77);
        assert_eq!(table.word_count(), base.table_words(5000));
        let mut scratch = base.scratch();

        // Unperturbed: everything reused, result identical to `run`.
        let (same, reused) = base.run_with_table(&table, &mut scratch);
        assert_eq!(same, base.run(5000, 1, 77));
        assert_eq!(reused, base.table_words(5000) as u64);

        // Perturbed: only untouched slots reused, result identical to a
        // fresh run of the rewritten program under the same seed.
        let rewritten = base.with_thresholds(&[0.9, 0.0, 0.35, 0.6]);
        let (perturbed, reused) = rewritten.run_with_table(&table, &mut scratch);
        assert_eq!(perturbed, rewritten.run(5000, 1, 77));
        // Slots 0 and 3 kept their thresholds: half the table reused.
        assert_eq!(reused, (base.table_words(5000) / 2) as u64);
    }

    #[test]
    fn threshold_overlay_runs_match_the_cloned_program() {
        let p = [0.9, 0.8, 0.7, 0.6];
        let systems = vec![vec![vec![0, 1], vec![0, 2]], vec![vec![3, 0]]];
        let base = compile_unfolded(&p, &systems);
        let probs = [0.9, 0.0, 0.35, 0.6];
        let rewritten = base.with_thresholds(&probs);
        let mut scratch = base.scratch();

        // No-table path: same bits as clone-then-run, scratch reusable.
        for (samples, seed) in [(5000, 77), (512, 3), (8191, 2013)] {
            assert_eq!(
                base.run_thresholds(&probs, samples, seed, &mut scratch),
                rewritten.run(samples, 1, seed),
                "run_thresholds diverged at samples={samples} seed={seed}"
            );
        }

        // Table path: same bits AND the same reused-word count.
        let table = base.draw_table(5000, 77);
        let mut clone_scratch = base.scratch();
        let expected = rewritten.run_with_table(&table, &mut clone_scratch);
        assert_eq!(
            base.run_with_table_thresholds(&table, &probs, &mut scratch),
            expected
        );
        // An identity overlay reuses the whole table.
        let (same, reused) = base.run_with_table_thresholds(&table, &p, &mut scratch);
        assert_eq!(same, base.run(5000, 1, 77));
        assert_eq!(reused, base.table_words(5000) as u64);
        // The base program is untouched by any of it.
        assert_eq!(base, compile_unfolded(&p, &systems));
    }

    #[test]
    fn work_stealing_handles_adversarial_splits() {
        let p = [0.9, 0.8, 0.7];
        let systems = vec![vec![vec![0, 1], vec![0, 2]]];
        let program = compile(&p, &systems);
        // workers > blocks (600 samples = 2 wide blocks), workers == 1,
        // and ragged tails must all agree with the twins.
        for (samples, workers) in [(600, 8), (600, 1), (513, 64), (4099, 7)] {
            let wide = program.run(samples, workers, 11);
            assert_eq!(
                wide,
                program.run_narrow(samples, workers, 11),
                "narrow diverged at samples={samples} workers={workers}"
            );
            assert_eq!(
                wide,
                program.run_scalar(samples, 11),
                "scalar diverged at samples={samples} workers={workers}"
            );
        }
    }

    #[test]
    fn run_partial_fan_out_sums_to_run() {
        let p = [0.9, 0.8, 0.7, 0.95];
        let systems = vec![vec![vec![0, 1], vec![0, 2]], vec![vec![3, 0]]];
        let program = compile(&p, &systems);
        let samples = 10_001;
        let reference = program.run(samples, 1, 42);
        // A pool fan-out: concurrent claimants drain one shared cursor
        // with different chunk sizes; the summed successes must reduce to
        // the exact single-threaded result.
        for (chunk, claimants) in [(1, 4), (3, 2), (64, 5)] {
            let cursor = AtomicU64::new(0);
            let total: u64 = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..claimants)
                    .map(|_| {
                        scope.spawn(|_| {
                            let mut scratch = program.scratch();
                            program.run_partial(samples, 42, &cursor, chunk, &mut scratch)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .expect("crossbeam scope");
            assert_eq!(mc_result_from(total, samples), reference);
        }
    }

    #[test]
    fn perfect_components_give_certainty() {
        let p = [1.0, 1.0];
        let mc = compile(&p, &[vec![vec![0, 1]]]).run(5_000, 2, 9);
        assert_eq!(mc.estimate, 1.0);
        assert_eq!(mc.std_error, 0.0);
        // Unfolded: the MAX-threshold sentinel draws certainly-up words.
        let mc = compile_unfolded(&p, &[vec![vec![0, 1]]]).run(5_000, 2, 9);
        assert_eq!(mc.estimate, 1.0);
    }

    #[test]
    fn exact_sample_count_is_preserved() {
        let p = [0.9];
        let mc = compile(&p, &[vec![vec![0]]]).run(1001, 4, 3);
        assert_eq!(mc.samples, 1001);
        // The tail mask must hide lanes ≥ samples: a fully-up component
        // must hit exactly `samples` successes, not a padded multiple.
        let all = compile(&[1.0 - 1e-18], &[vec![vec![0]]]).run(77, 3, 5);
        assert_eq!(all.samples, 77);
    }

    #[test]
    fn mixing_constants_into_stochastic_paths_matches_exact() {
        // p1 = 1 drops out of the path, p3 = 0 kills the second path.
        let p = [0.7, 1.0, 0.9, 0.0];
        let systems = vec![vec![vec![0, 1], vec![2, 3]]];
        let program = compile(&p, &systems);
        assert_eq!(program.component_count(), 1, "only component 0 is drawn");
        let mc = program.run(200_000, 2, 13);
        assert!(mc.covers(0.7), "CI {:?} misses 0.7", mc.confidence_95());
    }

    #[test]
    fn posterior_run_with_empty_sampler_degrades_to_point_run() {
        let p = [0.9, 0.8, 0.7, 0.95];
        let systems = vec![vec![vec![0, 1], vec![0, 2]], vec![vec![3, 0]]];
        let program = compile(&p, &systems);
        let sampler = program.posterior_sampler(&[None, None, None, None]);
        assert!(sampler.is_empty());
        for (samples, seed) in [(513, 7), (10_001, 42)] {
            let point = program.run(samples, 2, seed);
            let (posterior, _) = program.run_posterior(samples, 2, seed, &sampler);
            assert_eq!(posterior, point, "empty sampler must not change a bit");
        }
    }

    fn diffuse_sampler(program: &McProgram, comps: usize) -> PosteriorSampler {
        use crate::params::GammaPosterior;
        // Loose posteriors (n = 4 pseudo-sojourns) around MTBF 3000h /
        // MTTR 24h: availability draws visibly spread around ~0.992.
        let post = PosteriorComponent {
            fail: GammaPosterior {
                alpha: 5.0,
                beta: 5.0 * 3000.0,
            },
            repair: GammaPosterior {
                alpha: 5.0,
                beta: 5.0 * 24.0,
            },
            redundant: 0,
        };
        program.posterior_sampler(&vec![Some(post); comps])
    }

    #[test]
    fn posterior_estimates_are_worker_and_partition_invariant() {
        let p = [0.992, 0.992, 0.992, 0.992];
        let systems = vec![vec![vec![0, 1], vec![0, 2]], vec![vec![3, 0]]];
        let program = compile(&p, &systems);
        let sampler = diffuse_sampler(&program, 4);
        let samples = 10_001;
        let reference = program.run_posterior(samples, 1, 42, &sampler);
        for workers in [2, 4, 8] {
            assert_eq!(
                program.run_posterior(samples, workers, 42, &sampler),
                reference,
                "posterior run diverged at workers={workers}"
            );
        }
        // Pool-style partitions: arbitrary chunk sizes and claimant
        // counts must merge to the exact same accumulator.
        for (chunk, claimants) in [(1, 4), (3, 2), (64, 5)] {
            let cursor = AtomicU64::new(0);
            let partials: Vec<PosteriorAccum> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..claimants)
                    .map(|_| {
                        scope.spawn(|_| {
                            let mut scratch = program.scratch();
                            let mut part = PosteriorAccum::default();
                            program.run_posterior_partial(
                                samples,
                                42,
                                &cursor,
                                chunk,
                                &mut scratch,
                                &sampler,
                                &mut part,
                            );
                            part
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .expect("crossbeam scope");
            let mut merged = PosteriorAccum::default();
            for part in &partials {
                merged.merge(part);
            }
            assert_eq!(
                (merged.result(samples), merged.interval95(samples)),
                reference,
                "partition chunk={chunk} claimants={claimants} diverged"
            );
        }
    }

    #[test]
    fn posterior_interval_is_wider_than_the_bernoulli_interval() {
        let p = [0.992, 0.992];
        let systems = vec![vec![vec![0], vec![1]]];
        let program = compile(&p, &systems);
        let sampler = diffuse_sampler(&program, 2);
        let samples = 400_000;
        let point = program.run(samples, 2, 7);
        let (posterior, interval) = program.run_posterior(samples, 2, 7, &sampler);
        let wilson = point.confidence_95();
        assert!(
            interval.1 - interval.0 > wilson.1 - wilson.0,
            "parameter uncertainty must widen the interval: {interval:?} vs {wilson:?}"
        );
        // The posterior-mean availability stays near the point estimate.
        assert!((posterior.estimate - point.estimate).abs() < 0.005);
        assert!(interval.0 < posterior.estimate && posterior.estimate < interval.1);
    }

    #[test]
    fn posterior_thresholds_pins_perturbed_components() {
        use crate::params::GammaPosterior;
        let p = [0.992, 0.992, 0.992];
        let systems = vec![vec![vec![0, 1], vec![0, 2]]];
        let program = compile_unfolded(&p, &systems);
        let post = PosteriorComponent {
            fail: GammaPosterior {
                alpha: 5.0,
                beta: 5.0 * 3000.0,
            },
            repair: GammaPosterior {
                alpha: 5.0,
                beta: 5.0 * 24.0,
            },
            redundant: 0,
        };
        let mut scratch = program.scratch();
        // Kill component 1: the perturbation overrides its observation,
        // so the caller blanks its posterior before building the
        // sampler; the priced scenario must fall below the unperturbed
        // posterior estimate.
        let probs = [0.992, 0.0, 0.992];
        let sampler = program.posterior_sampler(&[Some(post), None, Some(post)]);
        let (perturbed, interval) =
            program.run_posterior_thresholds(&probs, 50_000, 11, &sampler, &mut scratch);
        let full = program.posterior_sampler(&[Some(post); 3]);
        let (baseline, _) = program.run_posterior(50_000, 1, 11, &full);
        assert!(perturbed.estimate < baseline.estimate);
        assert!(interval.0 <= perturbed.estimate && perturbed.estimate <= interval.1);
        // With an empty sampler the threshold run matches run_thresholds
        // bit for bit.
        let empty = program.posterior_sampler(&[None, None, None]);
        let (plain, _) = program.run_posterior_thresholds(&probs, 50_000, 11, &empty, &mut scratch);
        assert_eq!(
            plain,
            program.run_thresholds(&probs, 50_000, 11, &mut scratch)
        );
    }

    #[test]
    fn derive_seed_strides_by_golden_gamma() {
        assert_eq!(derive_seed(10, 0), 10);
        assert_ne!(derive_seed(10, 1), derive_seed(10, 2));
        assert_eq!(derive_seed(10, 1), 10u64.wrapping_add(GAMMA));
    }

    #[test]
    fn kernel_name_is_reported() {
        assert!(["avx512", "avx2", "portable"].contains(&wide_kernel_name()));
    }
}
