//! Parameter sensitivity: which MTBF/MTTR would an operator improve first?
//!
//! Paper Sec. VII: *"changes to intrinsic properties of network devices
//! (MTBF, redundant components, ...) can be performed directly in the class
//! description and so reflect to all objects in the service infrastructure
//! model."* This module quantifies the payoff of such a change
//! analytically:
//!
//! `∂A_service/∂θ = Σ_{i : class(i)=c} B_i · ∂A_i/∂θ_c`
//!
//! where `B_i` is the Birnbaum importance of component `i` (computed from
//! the exact BDD) and `∂A_i/∂θ` the derivative of the component
//! availability `A = MTBF/(MTBF+MTTR)` with respect to MTBF or MTTR.
//! Because class attributes are **static** (paper Sec. V-A1), a class-level
//! change moves every instance of the class at once — the per-class sums
//! below are what an operator actually controls.

use crate::bdd::Bdd;
use crate::transform::ServiceAvailabilityModel;
use std::collections::HashMap;

/// Sensitivity of the service availability to one component's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSensitivity {
    /// Component name.
    pub name: String,
    /// Birnbaum importance `∂A_service/∂A_i`.
    pub birnbaum: f64,
    /// `∂A_service/∂MTBF_i` (per hour of additional MTBF).
    pub d_mtbf: f64,
    /// `∂A_service/∂MTTR_i` (per hour of additional MTTR — negative).
    pub d_mttr: f64,
}

/// Computes per-component sensitivities from the exact service BDD.
///
/// Components with `redundantComponents > 0` chain through the redundancy
/// expansion `A' = 1 − (1 − A)^(r+1)`, i.e. `∂A'/∂A = (r+1)(1−A)^r`.
pub fn component_sensitivities(model: &ServiceAvailabilityModel) -> Vec<ComponentSensitivity> {
    let mut bdd = Bdd::new();
    let mut f = bdd.one();
    for system in &model.systems {
        let pair = bdd.from_path_sets(&system.path_sets);
        f = bdd.and(f, pair);
    }
    let probs = model.availability_vector();
    let mut out = Vec::with_capacity(model.components.len());
    for (i, component) in model.components.iter().enumerate() {
        let up = bdd.restrict(f, i as u32, true);
        let down = bdd.restrict(f, i as u32, false);
        let birnbaum = bdd.probability(up, &probs) - bdd.probability(down, &probs);

        // Base availability before redundancy expansion.
        let (mtbf, mttr) = (component.mtbf, component.mttr);
        if mtbf <= 0.0 {
            // Synthetic components (hand-built models) carry no rates.
            out.push(ComponentSensitivity {
                name: component.name.clone(),
                birnbaum,
                d_mtbf: 0.0,
                d_mttr: 0.0,
            });
            continue;
        }
        let base = mtbf / (mtbf + mttr);
        let total = mtbf + mttr;
        let d_base_d_mtbf = mttr / (total * total);
        let d_base_d_mttr = -mtbf / (total * total);
        let r = component.redundant;
        let d_expanded_d_base = (r as f64 + 1.0) * (1.0 - base).powi(r as i32);
        out.push(ComponentSensitivity {
            name: component.name.clone(),
            birnbaum,
            d_mtbf: birnbaum * d_expanded_d_base * d_base_d_mtbf,
            d_mttr: birnbaum * d_expanded_d_base * d_base_d_mttr,
        });
    }
    out
}

/// Sensitivity aggregated per **class**: the sum over the class's instances
/// (a static class attribute moves them all simultaneously). `classes`
/// maps component name → class name; unmapped components aggregate under
/// their own name.
pub fn class_sensitivities(
    model: &ServiceAvailabilityModel,
    classes: &HashMap<String, String>,
) -> Vec<(String, f64, f64)> {
    let mut by_class: HashMap<String, (f64, f64)> = HashMap::new();
    for s in component_sensitivities(model) {
        let class = classes
            .get(&s.name)
            .cloned()
            .unwrap_or_else(|| s.name.clone());
        let slot = by_class.entry(class).or_insert((0.0, 0.0));
        slot.0 += s.d_mtbf;
        slot.1 += s.d_mttr;
    }
    let mut out: Vec<(String, f64, f64)> =
        by_class.into_iter().map(|(c, (m, r))| (c, m, r)).collect();
    // Rank by leverage: improving MTTR by one hour is usually the actionable
    // knob, so sort by |d_mttr| descending (ties by name).
    out.sort_by(|a, b| {
        b.2.abs()
            .partial_cmp(&a.2.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::AnalysisOptions;
    use upsim_core::pipeline::UpsimPipeline;

    fn usi_model() -> (ServiceAvailabilityModel, HashMap<String, String>) {
        let infra = netgen::usi::usi_infrastructure();
        let mut pipeline = UpsimPipeline::new(
            infra.clone(),
            netgen::usi::printing_service(),
            netgen::usi::table_i_mapping(),
        )
        .unwrap();
        let run = pipeline.run().unwrap();
        let model = ServiceAvailabilityModel::from_run(&infra, &run, AnalysisOptions::default());
        let classes = model
            .components
            .iter()
            .map(|c| (c.name.clone(), infra.class_of(&c.name).unwrap().to_string()))
            .collect();
        (model, classes)
    }

    #[test]
    fn derivatives_have_the_right_signs() {
        let (model, _) = usi_model();
        for s in component_sensitivities(&model) {
            assert!(s.birnbaum >= 0.0, "{s:?}");
            assert!(s.d_mtbf >= 0.0, "more MTBF can only help: {s:?}");
            assert!(s.d_mttr <= 0.0, "more MTTR can only hurt: {s:?}");
        }
    }

    #[test]
    fn finite_difference_validates_the_analytic_derivative() {
        let (model, _) = usi_model();
        let sens = component_sensitivities(&model);
        let t1 = sens.iter().find(|s| s.name == "t1").unwrap();
        // Numeric: bump t1's MTTR by h and recompute through the model.
        let h = 1e-3;
        let mut bumped = model.clone();
        let idx = bumped.component_index("t1").unwrap();
        let c = &mut bumped.components[idx];
        c.mttr += h;
        c.availability = c.mtbf / (c.mtbf + c.mttr);
        let numeric = (bumped.availability_bdd() - model.availability_bdd()) / h;
        assert!(
            (numeric - t1.d_mttr).abs() < 1e-6,
            "numeric {numeric} vs analytic {}",
            t1.d_mttr
        );
    }

    #[test]
    fn class_ranking_reflects_the_leverage_structure() {
        let (model, classes) = usi_model();
        let ranked = class_sensitivities(&model, &classes);
        // Per hour of MTTR saved, the printer (MTTR already 1 h, so the
        // availability curve is steep) edges out the client (MTTR 24 h);
        // both dwarf every infrastructure class by an order of magnitude.
        assert_eq!(ranked[0].0, "Printer", "{ranked:?}");
        assert_eq!(ranked[1].0, "Comp", "{ranked:?}");
        assert!(ranked[1].2.abs() > 10.0 * ranked[2].2.abs(), "{ranked:?}");
        // Per hour of MTBF gained, the client dominates (worst MTBF).
        let best_mtbf = ranked
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(best_mtbf.0, "Comp", "{ranked:?}");
        // The redundant core class has negligible leverage.
        let c6500 = ranked.iter().find(|(c, _, _)| c == "C6500").unwrap();
        assert!(c6500.2.abs() < 1e-8, "{c6500:?}");
    }

    #[test]
    fn redundancy_dampens_sensitivity() {
        // A component with a spare is less sensitive to its parameters.
        let (mut model, _) = usi_model();
        let idx = model.component_index("t1").unwrap();
        let base_sens = component_sensitivities(&model)
            .into_iter()
            .find(|s| s.name == "t1")
            .unwrap();
        let c = &mut model.components[idx];
        c.redundant = 1;
        c.availability = crate::availability::with_redundancy(c.mtbf / (c.mtbf + c.mttr), 1);
        let red_sens = component_sensitivities(&model)
            .into_iter()
            .find(|s| s.name == "t1")
            .unwrap();
        assert!(red_sens.d_mttr.abs() < base_sens.d_mttr.abs());
    }
}
