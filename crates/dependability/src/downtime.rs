//! Downtime arithmetic and SLA classification — the operator-facing units
//! for the availability numbers the engines produce.

use std::time::Duration;

/// Hours in a (non-leap) year.
pub const HOURS_PER_YEAR: f64 = 8760.0;

/// Expected downtime per year for a steady-state availability.
pub fn downtime_per_year(availability: f64) -> Duration {
    assert!(
        (0.0..=1.0).contains(&availability),
        "availability out of range: {availability}"
    );
    Duration::from_secs_f64((1.0 - availability) * HOURS_PER_YEAR * 3600.0)
}

/// Expected downtime per 30-day month.
pub fn downtime_per_month(availability: f64) -> Duration {
    assert!(
        (0.0..=1.0).contains(&availability),
        "availability out of range: {availability}"
    );
    Duration::from_secs_f64((1.0 - availability) * 30.0 * 24.0 * 3600.0)
}

/// The number of leading nines of an availability (the industry "class"):
/// 0.99169… → 2, 0.9999 → 4. Zero for A < 0.9; saturates at 9 (beyond
/// that, f64 resolution is the limit, not the service).
pub fn nines(availability: f64) -> u32 {
    assert!(
        (0.0..=1.0).contains(&availability),
        "availability out of range: {availability}"
    );
    if availability >= 1.0 {
        return 9;
    }
    let mut n = 0;
    let mut threshold = 0.9;
    while availability >= threshold && n < 9 {
        n += 1;
        threshold = 1.0 - (1.0 - threshold) / 10.0;
    }
    n
}

/// `true` if the availability meets an SLA target (e.g. `0.995`), with a
/// tolerance of one part in 10¹² to absorb engine round-off.
pub fn meets_sla(availability: f64, target: f64) -> bool {
    availability + 1e-12 >= target
}

/// Renders a duration in the `"72 h 42 min"` form used by the reports.
pub fn render_downtime(d: Duration) -> String {
    let total_minutes = d.as_secs() / 60;
    let hours = total_minutes / 60;
    let minutes = total_minutes % 60;
    if hours == 0 {
        format!("{minutes} min")
    } else {
        format!("{hours} h {minutes} min")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downtime_conversions() {
        let d = downtime_per_year(0.99);
        assert!((d.as_secs_f64() / 3600.0 - 87.6).abs() < 1e-9);
        assert_eq!(downtime_per_year(1.0), Duration::ZERO);
        let monthly = downtime_per_month(0.999);
        assert!((monthly.as_secs_f64() / 60.0 - 43.2).abs() < 1e-9);
    }

    #[test]
    fn nines_classification() {
        assert_eq!(nines(0.8), 0);
        assert_eq!(nines(0.9), 1);
        assert_eq!(nines(0.99169), 2);
        assert_eq!(nines(0.999), 3);
        assert_eq!(nines(0.99999), 5);
        assert_eq!(nines(1.0), 9);
    }

    #[test]
    fn sla_checks_tolerate_round_off() {
        assert!(meets_sla(0.995, 0.995));
        assert!(meets_sla(0.995 - 1e-13, 0.995));
        assert!(!meets_sla(0.9949, 0.995));
    }

    #[test]
    fn rendering() {
        assert_eq!(
            render_downtime(Duration::from_secs(72 * 3600 + 42 * 60)),
            "72 h 42 min"
        );
        assert_eq!(render_downtime(Duration::from_secs(600)), "10 min");
    }

    #[test]
    fn usi_service_is_two_nines_with_72h_yearly_downtime() {
        // Anchors the case-study headline numbers.
        let a = 0.991699164;
        assert_eq!(nines(a), 2);
        let yearly = downtime_per_year(a);
        assert!((yearly.as_secs_f64() / 3600.0 - 72.7).abs() < 0.1);
        assert!(!meets_sla(a, 0.999));
        assert!(meets_sla(a, 0.99));
    }
}
