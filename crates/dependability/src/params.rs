//! Observation-fed parameter estimation: interval-censored exponential
//! MTBF/MTTR learning with conjugate Gamma posteriors.
//!
//! The paper treats each component's MTBF/MTTR as hand-authored
//! constants. Following "Observation-Enhanced QoS Analysis of
//! Component-Based Systems" (Paterson & Calinescu), this module refines
//! those parameters from runtime `up|down` transition events:
//!
//! * [`ParamEstimator`] folds a monotone stream of per-component state
//!   transitions into *sufficient statistics* — closed up/down sojourn
//!   counts and their integer-second durations. Only **closed** sojourns
//!   contribute (interval censoring): the open tail of the current state
//!   is never counted, so a component that has been up for a year but
//!   never observed failing contributes nothing to its failure rate.
//! * Failure and repair rates get independent conjugate Gamma posteriors
//!   anchored at the authored values: `rate ~ Gamma(α₀ + n, β₀ + T)`
//!   with `α₀ = 1`, `β₀ =` the authored mean time (one pseudo-sojourn of
//!   exactly the authored length). With zero closed sojourns the
//!   posterior mean reproduces the authored parameter *exactly*, which is
//!   what lets the observed path degrade bit-for-bit to the authored
//!   path (see [`refine`]).
//! * [`ParamSource`] is carried next to every probability the pipeline
//!   consumes, so downstream consumers (wire responses, reports) can tell
//!   an authored constant from a learned estimate with `n` observations
//!   and a 95% credible interval.
//! * [`PosteriorComponent`] is the sampling-side view: the two Gamma
//!   posteriors plus the redundancy attribute, enough to draw a fresh
//!   availability per Monte-Carlo trial block via inverse-CDF sampling
//!   ([`PosteriorComponent::sample_availability`]) — uncertainty
//!   propagation through the bit-sliced kernel.
//!
//! The incomplete-gamma numerics ([`ln_gamma`], [`gammap`],
//! [`inv_gammap`]) are hand-rolled (Lanczos + series/continued-fraction +
//! Newton inversion) so the crate stays dependency-free.

use std::collections::BTreeMap;
use std::fmt;

use crate::availability::{paper_approximation, steady_state, with_redundancy};
use crate::transform::ServiceAvailabilityModel;

/// Where a component's dependability parameters came from.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ParamSource {
    /// Hand-authored model constants (the paper's Fig. 6 attributes).
    #[default]
    Authored,
    /// Refined online from observed state transitions.
    Observed {
        /// Closed sojourns folded into the posterior (both states).
        n: u64,
        /// 95% credible interval on the component availability
        /// (redundancy included), from the rate posteriors.
        ci: (f64, f64),
    },
}

/// An out-of-order or duplicate observation timestamp. Accepting it would
/// silently corrupt interval censoring (a negative or double-counted
/// sojourn), so the event is rejected before any state changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonMonotoneTimestamp {
    /// The observed component.
    pub component: String,
    /// The rejected event's timestamp.
    pub ts: u64,
    /// The component's latest accepted timestamp.
    pub last: u64,
}

impl fmt::Display for NonMonotoneTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-monotone timestamp for `{}`: {} <= {} (observations must strictly advance)",
            self.component, self.ts, self.last
        )
    }
}

/// Sufficient statistics of one component's observed transition history.
///
/// Durations are kept as exact integer seconds so a journal replay
/// reproduces the posterior state bit-for-bit; they are converted to
/// hours (the unit of the authored MTBF/MTTR attributes) only when a
/// posterior is formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentObservations {
    /// Current state: `true` = up.
    pub up: bool,
    /// When the current state was entered (seconds).
    pub entered_ts: u64,
    /// Latest accepted event timestamp (seconds).
    pub last_ts: u64,
    /// Closed up-sojourns (ended by an observed failure).
    pub up_closed: u64,
    /// Total seconds across closed up-sojourns.
    pub up_seconds: u64,
    /// Closed down-sojourns (ended by an observed repair).
    pub down_closed: u64,
    /// Total seconds across closed down-sojourns.
    pub down_seconds: u64,
}

impl ComponentObservations {
    fn first(up: bool, ts: u64) -> Self {
        ComponentObservations {
            up,
            entered_ts: ts,
            last_ts: ts,
            up_closed: 0,
            up_seconds: 0,
            down_closed: 0,
            down_seconds: 0,
        }
    }

    /// Does this history refine the authored parameters at all? Only
    /// closed sojourns carry rate information.
    pub fn refines(&self) -> bool {
        self.up_closed + self.down_closed > 0
    }

    /// Total accepted events is not recoverable from the sufficient
    /// statistics alone; closed sojourns are what the posterior sees.
    pub fn closed(&self) -> u64 {
        self.up_closed + self.down_closed
    }

    fn apply(&mut self, up: bool, ts: u64) {
        debug_assert!(ts > self.last_ts);
        if up != self.up {
            // The old state's sojourn closes: `entered..ts`.
            let dt = ts - self.entered_ts;
            if self.up {
                self.up_closed += 1;
                self.up_seconds += dt;
            } else {
                self.down_closed += 1;
                self.down_seconds += dt;
            }
            self.up = up;
            self.entered_ts = ts;
        }
        // A same-state repeat (heartbeat) just advances the clock; the
        // open sojourn stays open and censored.
        self.last_ts = ts;
    }
}

/// Per-component online MTBF/MTTR estimators for one model.
///
/// Deterministic: the map is ordered by component name, every duration is
/// integer seconds, and [`ParamEstimator::observe`] is a pure state
/// transition — replaying the same event stream always reproduces the
/// same estimator, which is what the journal-replay restore path relies
/// on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParamEstimator {
    components: BTreeMap<String, ComponentObservations>,
    total: u64,
}

impl ParamEstimator {
    /// An estimator with no observations.
    pub fn new() -> Self {
        ParamEstimator::default()
    }

    /// Folds one `up|down` transition event in. Timestamps must strictly
    /// increase per component; a stale or duplicate timestamp is rejected
    /// without changing any state.
    pub fn observe(
        &mut self,
        component: &str,
        up: bool,
        ts: u64,
    ) -> Result<(), NonMonotoneTimestamp> {
        match self.components.get_mut(component) {
            Some(obs) => {
                if ts <= obs.last_ts {
                    return Err(NonMonotoneTimestamp {
                        component: component.to_string(),
                        ts,
                        last: obs.last_ts,
                    });
                }
                obs.apply(up, ts);
            }
            None => {
                self.components
                    .insert(component.to_string(), ComponentObservations::first(up, ts));
            }
        }
        self.total += 1;
        Ok(())
    }

    /// The observed history of one component, if any event arrived.
    pub fn get(&self, component: &str) -> Option<&ComponentObservations> {
        self.components.get(component)
    }

    /// Restores one component's sufficient statistics verbatim (snapshot
    /// import). `total` must be restored separately via
    /// [`ParamEstimator::set_total`].
    pub fn insert(&mut self, component: impl Into<String>, obs: ComponentObservations) {
        self.components.insert(component.into(), obs);
    }

    /// Restores the accepted-event counter (snapshot import).
    pub fn set_total(&mut self, total: u64) {
        self.total = total;
    }

    /// Every component with observed history, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ComponentObservations)> {
        self.components.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Accepted observation events, total.
    pub fn observations_total(&self) -> u64 {
        self.total
    }

    /// Components whose parameters are actually refined (at least one
    /// closed sojourn).
    pub fn observed_components(&self) -> usize {
        self.components.values().filter(|o| o.refines()).count()
    }

    /// `true` when no event has ever been accepted.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// A Gamma posterior over a rate (failures or repairs per hour):
/// `rate ~ Gamma(alpha, beta)` with mean `alpha / beta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaPosterior {
    /// Shape: prior pseudo-count plus closed sojourns.
    pub alpha: f64,
    /// Rate parameter in hours: prior mean time plus observed exposure.
    pub beta: f64,
}

impl GammaPosterior {
    /// Posterior mean rate (events per hour).
    pub fn mean_rate(&self) -> f64 {
        self.alpha / self.beta
    }

    /// Rate quantile via the inverse regularized incomplete gamma.
    pub fn rate_quantile(&self, p: f64) -> f64 {
        inv_gammap(self.alpha, p) / self.beta
    }

    /// 95% credible interval on the *mean time* `1 / rate` (hours).
    pub fn mean_time_ci95(&self) -> (f64, f64) {
        let hi_rate = self.rate_quantile(0.975);
        let lo_rate = self.rate_quantile(0.025);
        (1.0 / hi_rate, 1.0 / lo_rate)
    }
}

/// Floor for the prior exposure so a (pathological) zero authored mean
/// time still yields a proper posterior.
const MIN_PRIOR_BETA: f64 = 1e-9;

fn posterior(closed: u64, seconds: u64, authored_hours: f64) -> GammaPosterior {
    GammaPosterior {
        alpha: 1.0 + closed as f64,
        beta: authored_hours.max(MIN_PRIOR_BETA) + seconds as f64 / 3600.0,
    }
}

/// A component's refined parameters: posterior point estimates, credible
/// intervals, and the posteriors themselves for block resampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinedParams {
    /// Posterior point MTBF (hours): inverse of the posterior mean
    /// failure rate.
    pub mtbf: f64,
    /// Posterior point MTTR (hours).
    pub mttr: f64,
    /// 95% credible interval on MTBF (hours).
    pub mtbf_ci: (f64, f64),
    /// 95% credible interval on MTTR (hours).
    pub mttr_ci: (f64, f64),
    /// Closed sojourns behind the estimate (both states).
    pub n: u64,
    /// Failure-rate posterior.
    pub fail: GammaPosterior,
    /// Repair-rate posterior.
    pub repair: GammaPosterior,
}

/// Refines authored MTBF/MTTR with a component's observed history, or
/// `None` when the history carries no rate information (zero closed
/// sojourns — the authored parameters stand untouched, so the observed
/// path is byte-identical to the authored one).
///
/// With `α₀ = 1, β₀ = authored` the posterior mean rate after zero closed
/// sojourns of a given kind is exactly `1 / authored`: a side with
/// observations moves, the other side stays at its authored value.
pub fn refine(
    obs: &ComponentObservations,
    authored_mtbf: f64,
    authored_mttr: f64,
) -> Option<RefinedParams> {
    if !obs.refines() {
        return None;
    }
    let fail = posterior(obs.up_closed, obs.up_seconds, authored_mtbf);
    let repair = posterior(obs.down_closed, obs.down_seconds, authored_mttr);
    Some(RefinedParams {
        mtbf: 1.0 / fail.mean_rate(),
        mttr: 1.0 / repair.mean_rate(),
        mtbf_ci: fail.mean_time_ci95(),
        mttr_ci: repair.mean_time_ci95(),
        n: obs.closed(),
        fail,
        repair,
    })
}

/// The sampling-side view of one refined component: enough to draw a
/// fresh availability per Monte-Carlo trial block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PosteriorComponent {
    /// Failure-rate posterior.
    pub fail: GammaPosterior,
    /// Repair-rate posterior.
    pub repair: GammaPosterior,
    /// `redundantComponents` attribute of the component.
    pub redundant: i64,
}

impl PosteriorComponent {
    /// Draws one availability from the parameter posterior via inverse-CDF
    /// sampling: `λ_f ~ Gamma(fail)`, `λ_r ~ Gamma(repair)`,
    /// `A = λ_r / (λ_f + λ_r)` (the exact steady-state formula in rate
    /// form), then redundancy expansion. `u_fail`/`u_repair` must lie in
    /// the open unit interval.
    pub fn sample_availability(&self, u_fail: f64, u_repair: f64) -> f64 {
        let lambda_fail = inv_gammap(self.fail.alpha, u_fail) / self.fail.beta;
        let lambda_repair = inv_gammap(self.repair.alpha, u_repair) / self.repair.beta;
        let total = lambda_fail + lambda_repair;
        let base = if total > 0.0 {
            (lambda_repair / total).clamp(0.0, 1.0)
        } else {
            1.0
        };
        with_redundancy(base, self.redundant)
    }
}

/// Overlays refined parameters onto an availability model in place and
/// returns the per-component posteriors (aligned with
/// `model.components`; `None` = authored, untouched).
///
/// Components without rate-carrying observations keep their authored
/// MTBF/MTTR, availability, and `ParamSource::Authored` bit-for-bit.
pub fn overlay_model(
    model: &mut ServiceAvailabilityModel,
    params: &ParamEstimator,
    paper_formula: bool,
) -> Vec<Option<PosteriorComponent>> {
    let mut posteriors = Vec::with_capacity(model.components.len());
    for component in &mut model.components {
        let refined = params
            .get(&component.name)
            .and_then(|obs| refine(obs, component.mtbf, component.mttr));
        let Some(r) = refined else {
            posteriors.push(None);
            continue;
        };
        let base = |mtbf: f64, mttr: f64| {
            if paper_formula {
                paper_approximation(mtbf, mttr)
            } else {
                steady_state(mtbf, mttr)
            }
        };
        // Availability is increasing in MTBF and decreasing in MTTR, so
        // the credible interval's corners bound it.
        let lo = with_redundancy(base(r.mtbf_ci.0, r.mttr_ci.1), component.redundant);
        let hi = with_redundancy(base(r.mtbf_ci.1, r.mttr_ci.0), component.redundant);
        component.mtbf = r.mtbf;
        component.mttr = r.mttr;
        component.availability = with_redundancy(base(r.mtbf, r.mttr), component.redundant);
        component.source = ParamSource::Observed {
            n: r.n,
            ci: (lo, hi),
        };
        posteriors.push(Some(PosteriorComponent {
            fail: r.fail,
            repair: r.repair,
            redundant: component.redundant,
        }));
    }
    posteriors
}

// ---------------------------------------------------------------------------
// Incomplete-gamma numerics (hand-rolled; no external dependencies).
// ---------------------------------------------------------------------------

/// Natural log of the gamma function (Lanczos approximation, ~1e-10
/// relative accuracy for positive arguments).
pub fn ln_gamma(x: f64) -> f64 {
    const COF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    debug_assert!(x > 0.0, "ln_gamma needs a positive argument, got {x}");
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma `P(a, x)`: series expansion for
/// `x < a + 1`, continued fraction (modified Lentz) otherwise.
pub fn gammap(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gammap needs a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

const GAMMA_EPS: f64 = 1e-15;
const GAMMA_ITMAX: usize = 500;

fn gamma_series(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut del = 1.0 / a;
    let mut sum = del;
    for _ in 0..GAMMA_ITMAX {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * GAMMA_EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

fn gamma_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let gln = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=GAMMA_ITMAX {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < GAMMA_EPS {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

/// Inverse of [`gammap`] in `x`: the `p`-quantile of a Gamma(`a`, 1)
/// distribution. Wilson–Hilferty initial guess refined by Halley steps.
pub fn inv_gammap(a: f64, p: f64) -> f64 {
    assert!(a > 0.0, "inv_gammap needs a > 0");
    assert!(
        (0.0..1.0).contains(&p) || p == 0.0,
        "inv_gammap needs p in [0, 1), got {p}"
    );
    if p <= 0.0 {
        return 0.0;
    }
    let gln = ln_gamma(a);
    let a1 = a - 1.0;
    let mut x = if a > 1.0 {
        // Wilson–Hilferty via an inverse-normal rational approximation.
        // After the `p < 0.5` flip, `z` is the magnitude of the normal
        // deviate on the low side, so the cube-root term subtracts it.
        let pp = if p < 0.5 { p } else { 1.0 - p };
        let t = (-2.0 * pp.ln()).sqrt();
        let mut z = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t;
        if p < 0.5 {
            z = -z;
        }
        let wh = 1.0 - 1.0 / (9.0 * a) - z / (3.0 * a.sqrt());
        (a * wh * wh * wh).max(1e-3)
    } else {
        let t = 1.0 - a * (0.253 + a * 0.12);
        if p < t {
            (p / t).powf(1.0 / a)
        } else {
            1.0 - ((1.0 - (p - t) / (1.0 - t)).ln())
        }
    };
    for _ in 0..24 {
        if x <= 0.0 {
            return 0.0;
        }
        let err = gammap(a, x) - p;
        // Density of Gamma(a, 1) at x.
        let t = (-x + a1 * x.ln() - gln).exp();
        if t == 0.0 {
            break;
        }
        let u = err / t;
        // Halley correction accelerates convergence near the tails.
        let dx = u / (1.0 - 0.5 * (u * (a1 / x - 1.0)).min(1.0));
        x -= dx;
        if x <= 0.0 {
            x = 0.5 * (x + dx);
        }
        if dx.abs() < 1e-12 * x.max(1.0) {
            break;
        }
    }
    x
}

/// Maps 64 random bits to the open unit interval `(0, 1)`: 52 bits of
/// resolution, offset by half a step so 0 is unreachable and the largest
/// value `1 - 2^-53` still rounds below 1.
pub fn unit_open(bits: u64) -> f64 {
    ((bits >> 12) as f64 + 0.5) * (1.0 / 4_503_599_627_370_496.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_closes_sojourns_on_transitions_only() {
        let mut est = ParamEstimator::new();
        est.observe("c", true, 100).expect("first event");
        // Heartbeat: same state, clock advances, nothing closes.
        est.observe("c", true, 200).expect("heartbeat");
        let obs = est.get("c").expect("present");
        assert_eq!(obs.up_closed + obs.down_closed, 0);
        assert!(!obs.refines());
        // Failure at 460: closes a 360s up-sojourn (entered at 100).
        est.observe("c", false, 460).expect("failure");
        let obs = est.get("c").expect("present");
        assert_eq!(obs.up_closed, 1);
        assert_eq!(obs.up_seconds, 360);
        assert!(obs.refines());
        // Repair at 560: closes a 100s down-sojourn.
        est.observe("c", true, 560).expect("repair");
        let obs = est.get("c").expect("present");
        assert_eq!(obs.down_closed, 1);
        assert_eq!(obs.down_seconds, 100);
        assert_eq!(est.observations_total(), 4);
        assert_eq!(est.observed_components(), 1);
    }

    #[test]
    fn non_monotone_timestamps_are_rejected_without_side_effects() {
        let mut est = ParamEstimator::new();
        est.observe("c", true, 100).expect("first event");
        let err = est.observe("c", false, 100).expect_err("duplicate ts");
        assert_eq!(err.ts, 100);
        assert_eq!(err.last, 100);
        let err = est.observe("c", false, 50).expect_err("stale ts");
        assert_eq!(err.last, 100);
        // Nothing moved: the rejected events left no trace.
        assert_eq!(est.observations_total(), 1);
        assert_eq!(est.get("c").expect("present").last_ts, 100);
        assert!(format!("{err}").contains("non-monotone timestamp"));
    }

    #[test]
    fn zero_closed_sojourns_reproduce_authored_parameters_exactly() {
        let mut est = ParamEstimator::new();
        est.observe("c", true, 0).expect("first event");
        let obs = *est.get("c").expect("present");
        assert!(refine(&obs, 3000.0, 24.0).is_none());
        // One closed up-sojourn: MTBF moves, MTTR stays exactly authored.
        est.observe("c", false, 3_600_000).expect("failure");
        let obs = *est.get("c").expect("present");
        let r = refine(&obs, 3000.0, 24.0).expect("refines");
        assert_eq!(r.mttr, 24.0, "unobserved side must stay authored");
        // Posterior MTBF: (3000 + 1000) hours exposure over 2 pseudo+real
        // sojourns.
        assert!((r.mtbf - 2000.0).abs() < 1e-9, "mtbf={}", r.mtbf);
        assert!(r.mtbf_ci.0 < r.mtbf && r.mtbf < r.mtbf_ci.1);
    }

    #[test]
    fn posterior_concentrates_with_observations() {
        // 50 sojourns of exactly 100h each: posterior mean pulls toward
        // 100h and the CI tightens around it.
        let mut est = ParamEstimator::new();
        let mut ts = 0u64;
        est.observe("c", true, ts).expect("first");
        for _ in 0..50 {
            ts += 100 * 3600;
            est.observe("c", false, ts).expect("failure");
            ts += 1;
            est.observe("c", true, ts).expect("repair");
        }
        let obs = *est.get("c").expect("present");
        let r = refine(&obs, 3000.0, 24.0).expect("refines");
        assert!(
            (r.mtbf - 100.0).abs() < 60.0,
            "posterior must approach the observed 100h, got {}",
            r.mtbf
        );
        let width = r.mtbf_ci.1 - r.mtbf_ci.0;
        assert!(width < r.mtbf, "CI must be tighter than the mean: {width}");
    }

    #[test]
    fn incomplete_gamma_matches_known_values() {
        // P(1, x) = 1 - e^-x.
        for x in [0.1, 1.0, 2.5, 7.0] {
            assert!((gammap(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        // Median of Gamma(1,1) is ln 2.
        assert!((inv_gammap(1.0, 0.5) - std::f64::consts::LN_2).abs() < 1e-9);
        // Round trip across shapes and quantiles.
        for a in [0.3, 1.0, 2.7, 15.0, 120.0] {
            for p in [0.01, 0.025, 0.5, 0.975, 0.99] {
                let x = inv_gammap(a, p);
                assert!(
                    (gammap(a, x) - p).abs() < 1e-8,
                    "round trip failed at a={a}, p={p}: x={x}"
                );
            }
        }
    }

    #[test]
    fn posterior_sampling_stays_in_unit_interval_and_tracks_mean() {
        let post = PosteriorComponent {
            fail: GammaPosterior {
                alpha: 11.0,
                beta: 11.0 * 3000.0,
            },
            repair: GammaPosterior {
                alpha: 11.0,
                beta: 11.0 * 24.0,
            },
            redundant: 0,
        };
        let point = steady_state(3000.0, 24.0);
        // Midpoint product grid over the two independent uniforms.
        let mut sum = 0.0;
        let n = 24;
        for i in 0..n {
            for j in 0..n {
                let u1 = (i as f64 + 0.5) / n as f64;
                let u2 = (j as f64 + 0.5) / n as f64;
                let a = post.sample_availability(u1, u2);
                assert!((0.0..=1.0).contains(&a));
                sum += a;
            }
        }
        let mean = sum / (n * n) as f64;
        assert!(
            (mean - point).abs() < 0.01,
            "sampled mean {mean} far from point {point}"
        );
    }

    #[test]
    fn unit_open_never_hits_the_endpoints() {
        for bits in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            let u = unit_open(bits);
            assert!(u > 0.0 && u < 1.0, "unit_open({bits}) = {u}");
        }
    }
}
