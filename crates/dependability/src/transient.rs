//! Transient (time-dependent) analysis — beyond steady state.
//!
//! Paper Sec. VII names responsiveness and performability as further
//! user-perceived properties the UPSIM enables, and its related work
//! explicitly criticizes methodologies that "can only be used to assess
//! steady-state availability". This module adds the textbook transient
//! quantities for the standard two-state Markov component model
//! (failure rate `λ = 1/MTBF`, repair rate `µ = 1/MTTR`):
//!
//! * **instantaneous availability** of a component that starts working:
//!   `A(t) = µ/(λ+µ) + λ/(λ+µ) · e^{−(λ+µ)t}` — decays monotonically from
//!   1 to the steady-state value,
//! * **mission reliability** `R(t) = e^{−λt}` — probability of surviving a
//!   mission of length `t` without any failure (no repair credit),
//! * service-level curves: both plugged into the exact BDD structure
//!   function of a [`ServiceAvailabilityModel`], yielding the
//!   user-perceived `A_service(t)` and `R_service(t)`.

use crate::bdd::Bdd;
use crate::transform::ServiceAvailabilityModel;

/// Failure/repair rates of one component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentRates {
    /// Failure rate `λ = 1/MTBF` (per hour).
    pub lambda: f64,
    /// Repair rate `µ = 1/MTTR` (per hour); `f64::INFINITY` for
    /// instantaneous repair.
    pub mu: f64,
}

impl ComponentRates {
    /// Derives the rates from MTBF/MTTR hours.
    pub fn from_times(mtbf: f64, mttr: f64) -> Self {
        assert!(mtbf > 0.0, "MTBF must be positive");
        assert!(mttr >= 0.0, "MTTR must be non-negative");
        ComponentRates {
            lambda: 1.0 / mtbf,
            mu: if mttr == 0.0 {
                f64::INFINITY
            } else {
                1.0 / mttr
            },
        }
    }

    /// Instantaneous availability at time `t ≥ 0`, starting from a working
    /// state at `t = 0`.
    pub fn instantaneous_availability(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "time must be non-negative");
        if self.mu.is_infinite() {
            return 1.0;
        }
        let total = self.lambda + self.mu;
        self.mu / total + (self.lambda / total) * (-total * t).exp()
    }

    /// Mission reliability over `[0, t]`: no failure, repairs don't count.
    pub fn mission_reliability(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "time must be non-negative");
        (-self.lambda * t).exp()
    }

    /// Steady-state availability (the `t → ∞` limit).
    pub fn steady_state(&self) -> f64 {
        if self.mu.is_infinite() {
            1.0
        } else {
            self.mu / (self.lambda + self.mu)
        }
    }
}

/// Transient service curves derived from a [`ServiceAvailabilityModel`].
pub struct TransientAnalysis {
    rates: Vec<ComponentRates>,
    bdd: Bdd,
    root: crate::bdd::BddRef,
}

impl TransientAnalysis {
    /// Builds the analysis: per-component rates from the model's MTBF/MTTR
    /// attributes, structure function = conjunction over all mapping pairs.
    pub fn new(model: &ServiceAvailabilityModel) -> Self {
        let rates = model
            .components
            .iter()
            .map(|c| ComponentRates::from_times(c.mtbf, c.mttr))
            .collect();
        let mut bdd = Bdd::new();
        let mut root = bdd.one();
        for system in &model.systems {
            let pair = bdd.from_path_sets(&system.path_sets);
            root = bdd.and(root, pair);
        }
        TransientAnalysis { rates, bdd, root }
    }

    /// User-perceived instantaneous service availability at time `t`.
    pub fn availability_at(&self, t: f64) -> f64 {
        let probs: Vec<f64> = self
            .rates
            .iter()
            .map(|r| r.instantaneous_availability(t))
            .collect();
        self.bdd.probability(self.root, &probs)
    }

    /// User-perceived mission reliability over `[0, t]`.
    pub fn reliability_at(&self, t: f64) -> f64 {
        let probs: Vec<f64> = self
            .rates
            .iter()
            .map(|r| r.mission_reliability(t))
            .collect();
        self.bdd.probability(self.root, &probs)
    }

    /// The steady-state limit of [`TransientAnalysis::availability_at`].
    pub fn steady_state(&self) -> f64 {
        let probs: Vec<f64> = self
            .rates
            .iter()
            .map(ComponentRates::steady_state)
            .collect();
        self.bdd.probability(self.root, &probs)
    }

    /// Samples `A(t)` at the given times (convenience for curve reports).
    pub fn availability_curve(&self, times: &[f64]) -> Vec<(f64, f64)> {
        times
            .iter()
            .map(|&t| (t, self.availability_at(t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::availability::steady_state as steady_formula;

    #[test]
    fn component_availability_decays_from_one_to_steady_state() {
        let r = ComponentRates::from_times(1000.0, 10.0);
        assert!((r.instantaneous_availability(0.0) - 1.0).abs() < 1e-12);
        let a_inf = r.instantaneous_availability(1e9);
        assert!((a_inf - steady_formula(1000.0, 10.0)).abs() < 1e-9);
        // Monotone decay.
        let mut prev = 1.0;
        for t in [0.1, 1.0, 10.0, 100.0, 1000.0] {
            let a = r.instantaneous_availability(t);
            assert!(a <= prev + 1e-15, "not monotone at t={t}");
            assert!(a >= r.steady_state() - 1e-15);
            prev = a;
        }
    }

    #[test]
    fn mission_reliability_is_exponential() {
        let r = ComponentRates::from_times(100.0, 1.0);
        assert!((r.mission_reliability(0.0) - 1.0).abs() < 1e-12);
        assert!((r.mission_reliability(100.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert!(r.mission_reliability(1e6) < 1e-9);
    }

    #[test]
    fn zero_mttr_means_always_available() {
        let r = ComponentRates::from_times(10.0, 0.0);
        assert_eq!(r.instantaneous_availability(5.0), 1.0);
        assert_eq!(r.steady_state(), 1.0);
        // ... but missions still fail (no repair credit in R).
        assert!(r.mission_reliability(5.0) < 1.0);
    }

    fn usi_model() -> ServiceAvailabilityModel {
        use upsim_core::pipeline::UpsimPipeline;
        let mut pipeline = UpsimPipeline::new(
            netgen::usi::usi_infrastructure(),
            netgen::usi::printing_service(),
            netgen::usi::table_i_mapping(),
        )
        .unwrap();
        let run = pipeline.run().unwrap();
        ServiceAvailabilityModel::from_run(
            pipeline.infrastructure(),
            &run,
            crate::transform::AnalysisOptions::default(),
        )
    }

    #[test]
    fn service_curve_starts_at_one_and_converges_to_steady_state() {
        let model = usi_model();
        let transient = TransientAnalysis::new(&model);
        assert!((transient.availability_at(0.0) - 1.0).abs() < 1e-12);
        let steady_bdd = model.availability_bdd();
        assert!((transient.steady_state() - steady_bdd).abs() < 1e-12);
        assert!((transient.availability_at(1e7) - steady_bdd).abs() < 1e-9);
        // Monotone decay of the service curve.
        let curve = transient.availability_curve(&[0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0]);
        for pair in curve.windows(2) {
            assert!(pair[1].1 <= pair[0].1 + 1e-15, "{pair:?}");
        }
    }

    #[test]
    fn service_reliability_below_availability() {
        let model = usi_model();
        let transient = TransientAnalysis::new(&model);
        for t in [1.0, 10.0, 100.0] {
            let r = transient.reliability_at(t);
            let a = transient.availability_at(t);
            assert!(r <= a + 1e-15, "R(t) must lower-bound A(t) at t={t}");
            assert!(r > 0.0);
        }
    }
}
