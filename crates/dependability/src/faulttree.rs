//! Fault trees — the dual view of the RBD (paper Sec. VII offers both).
//!
//! A fault tree describes the *failure* of the service: the top event
//! occurs when the gate structure over basic component-failure events is
//! true. [`Gate::from_rbd`] builds the dual tree of an RBD (series →
//! OR-of-failures, parallel → AND-of-failures); evaluation goes through the
//! BDD engine, so repeated basic events are handled exactly.

use crate::bdd::{Bdd, BddRef};
use crate::rbd::Block;

/// A fault-tree gate over basic events (component indices; the event is
/// "component i has failed").
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Basic event: failure of one component.
    Basic(usize),
    /// Output fails when **any** input fails... i.e. logical OR of failures.
    Or(Vec<Gate>),
    /// Output fails when **all** inputs fail (redundancy).
    And(Vec<Gate>),
    /// Output fails when at least `k` inputs fail.
    AtLeast {
        /// Failure threshold.
        k: usize,
        /// Input gates.
        gates: Vec<Gate>,
    },
}

impl Gate {
    /// The dual fault tree of an RBD: the system *fails* iff the block
    /// structure is *down*.
    pub fn from_rbd(block: &Block) -> Gate {
        match block {
            Block::Unit(i) => Gate::Basic(*i),
            // Series works iff all work → fails iff any fails.
            Block::Series(bs) => Gate::Or(bs.iter().map(Gate::from_rbd).collect()),
            // Parallel works iff any works → fails iff all fail.
            Block::Parallel(bs) => Gate::And(bs.iter().map(Gate::from_rbd).collect()),
            // k-of-n works iff ≥k work → fails iff ≥ n-k+1 fail.
            Block::KOfN { k, blocks } => Gate::AtLeast {
                k: blocks.len() - k + 1,
                gates: blocks.iter().map(Gate::from_rbd).collect(),
            },
        }
    }

    /// Encodes the failure function into a BDD. Variables keep the
    /// *availability* polarity (variable true = component up), so the
    /// returned function is true when the top event occurs.
    pub fn to_bdd(&self, bdd: &mut Bdd) -> BddRef {
        match self {
            Gate::Basic(i) => {
                let up = bdd.var(*i as u32);
                bdd.not(up)
            }
            Gate::Or(gs) => {
                let mut acc = bdd.zero();
                for g in gs {
                    let sub = g.to_bdd(bdd);
                    acc = bdd.or(acc, sub);
                }
                acc
            }
            Gate::And(gs) => {
                let mut acc = bdd.one();
                for g in gs {
                    let sub = g.to_bdd(bdd);
                    acc = bdd.and(acc, sub);
                }
                acc
            }
            Gate::AtLeast { k, gates } => {
                fn rec(bdd: &mut Bdd, gates: &[Gate], i: usize, need: usize) -> BddRef {
                    if need == 0 {
                        return bdd.one();
                    }
                    if i == gates.len() || gates.len() - i < need {
                        return bdd.zero();
                    }
                    let g = gates[i].to_bdd(bdd);
                    let not_g = bdd.not(g);
                    let with = rec(bdd, gates, i + 1, need - 1);
                    let without = rec(bdd, gates, i + 1, need);
                    let hi = bdd.and(g, with);
                    let lo = bdd.and(not_g, without);
                    bdd.or(hi, lo)
                }
                rec(bdd, gates, 0, *k)
            }
        }
    }

    /// Exact top-event probability (system unavailability) given component
    /// **availabilities**.
    pub fn top_event_probability(&self, availability: &[f64]) -> f64 {
        let mut bdd = Bdd::new();
        let f = self.to_bdd(&mut bdd);
        bdd.probability(f, availability)
    }

    /// All basic events (with repetition).
    pub fn basic_events(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<usize>) {
        match self {
            Gate::Basic(i) => out.push(*i),
            Gate::Or(gs) | Gate::And(gs) | Gate::AtLeast { gates: gs, .. } => {
                gs.iter().for_each(|g| g.collect(out))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duality_with_rbd() {
        // Any single-use RBD: unavailability of RBD == top-event prob of FT.
        let comp = [0.9, 0.8, 0.7, 0.95];
        let rbd = Block::Series(vec![
            Block::Unit(3),
            Block::Parallel(vec![
                Block::Series(vec![Block::Unit(0), Block::Unit(1)]),
                Block::Unit(2),
            ]),
        ]);
        let ft = Gate::from_rbd(&rbd);
        let unavailability = 1.0 - rbd.availability(&comp);
        assert!((ft.top_event_probability(&comp) - unavailability).abs() < 1e-12);
    }

    #[test]
    fn or_gate_is_series_failure() {
        let ft = Gate::Or(vec![Gate::Basic(0), Gate::Basic(1)]);
        let comp = [0.9, 0.8];
        // fails unless both up: 1 - 0.72
        assert!((ft.top_event_probability(&comp) - 0.28).abs() < 1e-12);
    }

    #[test]
    fn and_gate_is_redundancy() {
        let ft = Gate::And(vec![Gate::Basic(0), Gate::Basic(1)]);
        let comp = [0.9, 0.8];
        // fails only if both down: 0.1 * 0.2
        assert!((ft.top_event_probability(&comp) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn at_least_matches_k_of_n_dual() {
        let comp = [0.9; 4];
        let rbd = Block::KOfN {
            k: 3,
            blocks: (0..4).map(Block::Unit).collect(),
        };
        let ft = Gate::from_rbd(&rbd);
        assert!(matches!(ft, Gate::AtLeast { k: 2, .. }));
        let unavailability = 1.0 - rbd.availability(&comp);
        assert!((ft.top_event_probability(&comp) - unavailability).abs() < 1e-12);
    }

    #[test]
    fn repeated_events_are_exact() {
        // Failure = c0 down OR (c1 down AND c0 down) — simplifies to c0 down.
        let ft = Gate::Or(vec![
            Gate::Basic(0),
            Gate::And(vec![Gate::Basic(1), Gate::Basic(0)]),
        ]);
        let comp = [0.9, 0.5];
        assert!((ft.top_event_probability(&comp) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn basic_events_enumeration() {
        let ft = Gate::Or(vec![
            Gate::Basic(2),
            Gate::And(vec![Gate::Basic(0), Gate::Basic(2)]),
        ]);
        assert_eq!(ft.basic_events(), vec![2, 0, 2]);
    }
}
