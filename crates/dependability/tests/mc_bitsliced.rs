//! Cross-validation of the compiled bit-sliced Monte-Carlo kernel
//! ([`dependability::McProgram`]) on full pipeline-built models:
//!
//! * property: on random generated campuses the bit-sliced run agrees
//!   **exactly** (bit for bit) with its trial-at-a-time scalar twin, and
//!   the estimate is invariant under the worker count,
//! * statistics: over all 45 USI printing perspectives the 95% CI of a
//!   200 000-sample run covers the BDD-exact availability for (almost)
//!   every perspective — the E-series entry in EXPERIMENTS.md records
//!   the deterministic outcome for the committed seed.

use dependability::transform::{AnalysisOptions, ServiceAvailabilityModel};
use netgen::campus::{campus_scenario, CampusParams};
use netgen::usi::{all_printing_perspectives, printing_service, usi_infrastructure};
use proptest::prelude::*;
use upsim_core::pipeline::UpsimPipeline;

/// Builds the availability model of one campus perspective through the
/// full pipeline.
fn campus_model(params: CampusParams) -> ServiceAvailabilityModel {
    let (infra, service, mapping) = campus_scenario(params);
    let mut pipeline =
        UpsimPipeline::new(infra, service, mapping).expect("campus models are consistent");
    let run = pipeline.run().expect("campus pipeline runs");
    ServiceAvailabilityModel::from_run(pipeline.infrastructure(), &run, AnalysisOptions::default())
}

/// Small random campus shapes (kept modest so 64 cases stay fast).
fn params_strategy() -> impl Strategy<Value = CampusParams> {
    (
        1usize..=3,
        1usize..=3,
        1usize..=2,
        1usize..=3,
        1usize..=2,
        any::<bool>(),
    )
        .prop_map(
            |(core, distributions, edges_per_distribution, clients_per_edge, servers, dual)| {
                CampusParams {
                    core,
                    distributions,
                    edges_per_distribution,
                    clients_per_edge,
                    servers,
                    dual_homed_edges: dual,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wide (512-trial-block) kernel is an exact reformulation of
    /// per-trial sampling: same draws, same structure function, same
    /// count — for any sample count (including ragged tails) and any
    /// worker split. Checked against both twins: the narrow
    /// one-word-at-a-time executor (the pre-wide kernel) and the
    /// trial-at-a-time scalar executor.
    #[test]
    fn bitsliced_equals_scalar_twin_on_random_campuses(
        params in params_strategy(),
        samples in 1usize..=2_000,
        workers in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let program = campus_model(params).compile_mc();
        let wide = program.run(samples, workers, seed);
        prop_assert_eq!(wide, program.run_narrow(samples, workers, seed));
        prop_assert_eq!(wide, program.run_scalar(samples, seed));
        // Worker-count invariance (the counter-based RNG contract).
        prop_assert_eq!(wide, program.run(samples, 1, seed));
    }

    /// The trial-at-a-time reference sampler draws the very same
    /// counter-based stream: `montecarlo::estimate` over the raw path
    /// sets is bit-identical to the compiled unfolded program — at any
    /// worker count on either side.
    #[test]
    fn scalar_sampler_matches_compiled_kernel_on_random_campuses(
        params in params_strategy(),
        samples in 1usize..=1_000,
        workers in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let model = campus_model(params);
        let systems: Vec<Vec<Vec<usize>>> =
            model.systems.iter().map(|s| s.path_sets.clone()).collect();
        let sampled = dependability::montecarlo::estimate(
            &model.availability_vector(),
            &systems,
            samples,
            workers,
            seed,
        );
        prop_assert_eq!(sampled, model.compile_mc_unfolded().run(samples, 1, seed));
    }

    /// Adversarial worker/block splits for the work-stealing cursor:
    /// sample counts biased to the ragged edges of the 512-trial block
    /// grid (one block plus a lane, one trial short of a block boundary,
    /// a single trial) and worker counts far beyond the block count, so
    /// most steal claims come back empty. The wide run must still agree
    /// bit for bit with the narrow and scalar twins, and with itself at
    /// one worker.
    #[test]
    fn adversarial_splits_are_partition_invariant(
        params in params_strategy(),
        samples in prop_oneof![
            1usize..=64,               // a fraction of one block
            Just(512usize),            // exactly one block
            513usize..=1025,           // one block + ragged tail
            (1usize..=8).prop_map(|k| k * 512 - 1), // one trial short
            (1usize..=8).prop_map(|k| k * 512 + 1), // one trial over
        ],
        workers in prop_oneof![Just(1usize), 2usize..=64],
        seed in any::<u64>(),
    ) {
        let program = campus_model(params).compile_mc();
        let wide = program.run(samples, workers, seed);
        prop_assert_eq!(wide, program.run_narrow(samples, workers, seed));
        prop_assert_eq!(wide, program.run_scalar(samples, seed));
        prop_assert_eq!(wide, program.run(samples, 1, seed));
    }
}

/// Acceptance regression: for a fixed `(seed, samples)` the estimate is
/// bit-identical for *any* worker count on a mid-size campus.
#[test]
fn worker_count_never_changes_the_estimate() {
    let model = campus_model(CampusParams {
        core: 2,
        distributions: 4,
        edges_per_distribution: 2,
        clients_per_edge: 4,
        servers: 3,
        dual_homed_edges: true,
    });
    let program = model.compile_mc();
    let reference = program.run(100_001, 1, 2013);
    for workers in [2, 3, 5, 8, 17, 64] {
        assert_eq!(
            program.run(100_001, workers, 2013),
            reference,
            "estimate changed at {workers} workers"
        );
    }
    assert!(
        reference.covers(model.availability_bdd()),
        "CI {:?} misses the exact availability",
        reference.confidence_95()
    );
}

/// Statistical coverage over the whole USI case study: each of the 45
/// printing perspectives gets a 200 000-sample bit-sliced estimate; at a
/// 95% confidence level a couple of misses are expected, so the test
/// asserts a high coverage count plus a tight absolute-error bound
/// everywhere, rather than demanding 45/45. Deterministic for the fixed
/// seed (the kernel's estimates do not depend on the host's cores).
#[test]
fn usi_perspectives_ci_covers_bdd_exact() {
    let shared_graph = std::sync::Arc::new(usi_infrastructure().to_interned_graph());
    let perspectives = all_printing_perspectives();
    assert_eq!(perspectives.len(), 45);
    let mut covered = 0usize;
    for (client, printer, mapping) in perspectives {
        let mut pipeline = UpsimPipeline::new(usi_infrastructure(), printing_service(), mapping)
            .expect("USI models are consistent");
        pipeline.set_shared_graph(std::sync::Arc::clone(&shared_graph));
        let run = pipeline.run().expect("USI pipeline runs");
        let model = ServiceAvailabilityModel::from_run(
            pipeline.infrastructure(),
            &run,
            AnalysisOptions::default(),
        );
        let exact = model.availability_bdd();
        let mc = model.monte_carlo_bitsliced(200_000, 0, 2013);
        covered += usize::from(mc.covers(exact));
        let sigma = (exact * (1.0 - exact) / 200_000.0).sqrt();
        assert!(
            (mc.estimate - exact).abs() < 5.0 * sigma,
            "{client}->{printer}: estimate {} strays from exact {exact}",
            mc.estimate
        );
    }
    eprintln!("bit-sliced CI covered the exact availability on {covered}/45 perspectives");
    assert!(
        covered >= 40,
        "only {covered}/45 perspectives covered the exact availability"
    );
}
