//! Statistical validation of the observation-fed parameter layer
//! ([`dependability::ParamEstimator`]) and the acceptance properties of
//! the posterior-resampling Monte-Carlo kernel:
//!
//! * coverage: on synthetic exponential traces the 95% credible
//!   intervals on MTBF/MTTR cover the true values at close to the
//!   nominal rate,
//! * convergence: posterior mean relative error shrinks monotonically as
//!   closed sojourns accumulate,
//! * degradation: zero rate-carrying observations leave the model — and
//!   the block-resampled kernel — bit-identical to the authored path,
//! * invariance: block-resampled estimates and predictive intervals are
//!   bit-identical at any worker count, including adversarial splits.

use dependability::transform::{AnalysisOptions, ServiceAvailabilityModel};
use dependability::{overlay_model, refine, ParamEstimator};
use netgen::campus::{campus_scenario, CampusParams};
use proptest::prelude::*;
use upsim_core::pipeline::UpsimPipeline;

// ---------------------------------------------------------------------------
// Deterministic synthetic traces
// ---------------------------------------------------------------------------

/// SplitMix64 step — the same generator family the kernel's counter-based
/// draws use, here as a plain sequential stream for trace synthesis.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in the open unit interval.
fn unit(state: &mut u64) -> f64 {
    ((next_u64(state) >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// One exponential sojourn of the given mean (hours), as whole seconds
/// (the estimator's clock), at least one.
fn exp_seconds(mean_hours: f64, state: &mut u64) -> u64 {
    let hours = -mean_hours * unit(state).ln();
    ((hours * 3600.0).ceil() as u64).max(1)
}

/// Feeds `sojourns` closed up-sojourns and `sojourns` closed
/// down-sojourns of exponential length into the estimator.
fn synth_trace(
    est: &mut ParamEstimator,
    name: &str,
    mtbf: f64,
    mttr: f64,
    sojourns: usize,
    state: &mut u64,
) {
    let mut ts = 0u64;
    est.observe(name, true, ts).expect("trace start");
    for _ in 0..sojourns {
        ts += exp_seconds(mtbf, state);
        est.observe(name, false, ts).expect("failure event");
        ts += exp_seconds(mttr, state);
        est.observe(name, true, ts).expect("repair event");
    }
}

// ---------------------------------------------------------------------------
// Statistical properties of the estimator
// ---------------------------------------------------------------------------

/// Frequentist check of the Bayesian machinery: across many independent
/// synthetic traces whose authored priors are only roughly right (off by
/// up to 2x), the 95% credible intervals must cover the true MTBF and
/// MTTR at close to the nominal rate. Deterministic for the fixed seed.
#[test]
fn credible_intervals_achieve_nominal_coverage() {
    const REPS: usize = 400;
    const SOJOURNS: usize = 60;
    let mut state = 0x5EEDu64;
    let mut mtbf_covered = 0usize;
    let mut mttr_covered = 0usize;
    for _ in 0..REPS {
        let true_mtbf = 20.0 + 480.0 * unit(&mut state);
        let true_mttr = 0.5 + 23.5 * unit(&mut state);
        let authored_mtbf = true_mtbf * (0.5 + 1.5 * unit(&mut state));
        let authored_mttr = true_mttr * (0.5 + 1.5 * unit(&mut state));
        let mut est = ParamEstimator::new();
        synth_trace(&mut est, "c", true_mtbf, true_mttr, SOJOURNS, &mut state);
        let refined = refine(
            est.get("c").expect("observed"),
            authored_mtbf,
            authored_mttr,
        )
        .expect("closed sojourns refine");
        if refined.mtbf_ci.0 <= true_mtbf && true_mtbf <= refined.mtbf_ci.1 {
            mtbf_covered += 1;
        }
        if refined.mttr_ci.0 <= true_mttr && true_mttr <= refined.mttr_ci.1 {
            mttr_covered += 1;
        }
    }
    let mtbf_rate = mtbf_covered as f64 / REPS as f64;
    let mttr_rate = mttr_covered as f64 / REPS as f64;
    eprintln!("coverage: mtbf {mtbf_rate:.3}, mttr {mttr_rate:.3} (nominal 0.95)");
    assert!(
        (0.89..=0.99).contains(&mtbf_rate),
        "MTBF CI coverage {mtbf_rate} strays from nominal 95%"
    );
    assert!(
        (0.89..=0.99).contains(&mttr_rate),
        "MTTR CI coverage {mttr_rate} strays from nominal 95%"
    );
}

/// More data, better estimate: the mean relative error of the posterior
/// point MTBF/MTTR decreases monotonically along a sojourn-count ladder.
#[test]
fn posterior_mean_error_shrinks_with_more_sojourns() {
    const LADDER: [usize; 4] = [4, 16, 64, 256];
    const REPS: usize = 120;
    let mut errors = Vec::new();
    for &sojourns in &LADDER {
        let mut state = 0xC0FFEEu64;
        let mut err = 0.0f64;
        for _ in 0..REPS {
            let true_mtbf = 20.0 + 480.0 * unit(&mut state);
            let true_mttr = 0.5 + 23.5 * unit(&mut state);
            let mut est = ParamEstimator::new();
            synth_trace(&mut est, "c", true_mtbf, true_mttr, sojourns, &mut state);
            let refined = refine(est.get("c").expect("observed"), true_mtbf, true_mttr)
                .expect("closed sojourns refine");
            err += (refined.mtbf - true_mtbf).abs() / true_mtbf
                + (refined.mttr - true_mttr).abs() / true_mttr;
        }
        errors.push(err / REPS as f64);
    }
    eprintln!("mean relative error along {LADDER:?}: {errors:?}");
    for window in errors.windows(2) {
        assert!(
            window[1] < window[0],
            "error did not shrink along the ladder: {errors:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Kernel acceptance properties
// ---------------------------------------------------------------------------

/// Builds the availability model of one campus perspective through the
/// full pipeline.
fn campus_model(params: CampusParams) -> ServiceAvailabilityModel {
    let (infra, service, mapping) = campus_scenario(params);
    let mut pipeline =
        UpsimPipeline::new(infra, service, mapping).expect("campus models are consistent");
    let run = pipeline.run().expect("campus pipeline runs");
    ServiceAvailabilityModel::from_run(pipeline.infrastructure(), &run, AnalysisOptions::default())
}

/// Small random campus shapes (kept modest so the proptest stays fast).
fn params_strategy() -> impl Strategy<Value = CampusParams> {
    (
        1usize..=3,
        1usize..=3,
        1usize..=2,
        1usize..=3,
        1usize..=2,
        any::<bool>(),
    )
        .prop_map(
            |(core, distributions, edges_per_distribution, clients_per_edge, servers, dual)| {
                CampusParams {
                    core,
                    distributions,
                    edges_per_distribution,
                    clients_per_edge,
                    servers,
                    dual_homed_edges: dual,
                }
            },
        )
}

/// Observes synthetic traces on a prefix of the model's components and
/// overlays the posteriors, returning the per-component sampler input.
fn observed_posteriors(
    model: &mut ServiceAvailabilityModel,
    observed: usize,
    state: &mut u64,
) -> Vec<Option<dependability::PosteriorComponent>> {
    let mut est = ParamEstimator::new();
    let names: Vec<String> = model
        .components
        .iter()
        .take(observed)
        .map(|c| c.name.clone())
        .collect();
    for name in &names {
        let mtbf = 50.0 + 400.0 * unit(state);
        let mttr = 1.0 + 12.0 * unit(state);
        synth_trace(&mut est, name, mtbf, mttr, 20, state);
    }
    overlay_model(model, &est, false)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Acceptance criterion: the block-resampled posterior run is
    /// bit-identical at 1/2/4/8 workers — estimate, std error, and the
    /// 95% predictive interval — including ragged sample counts around
    /// the 512-trial block grid.
    #[test]
    fn posterior_runs_are_worker_invariant(
        params in params_strategy(),
        observed in 1usize..=6,
        samples in prop_oneof![
            1usize..=64,
            Just(512usize),
            513usize..=1025,
            (1usize..=4).prop_map(|k| k * 512 - 1),
            (1usize..=4).prop_map(|k| k * 512 + 1),
        ],
        seed in any::<u64>(),
    ) {
        let mut model = campus_model(params);
        let mut state = seed | 1;
        let posteriors = observed_posteriors(&mut model, observed, &mut state);
        let program = model.compile_mc_unfolded();
        let sampler = program.posterior_sampler(&posteriors);
        let (reference, interval) = program.run_posterior(samples, 1, seed, &sampler);
        for workers in [2usize, 4, 8] {
            let (result, ci) = program.run_posterior(samples, workers, seed, &sampler);
            prop_assert_eq!(result, reference, "estimate drifted at {} workers", workers);
            prop_assert_eq!(
                (ci.0.to_bits(), ci.1.to_bits()),
                (interval.0.to_bits(), interval.1.to_bits()),
                "interval drifted at {} workers", workers
            );
        }
        // Up to rounding in the accumulator's quantile arithmetic, the
        // predictive interval brackets the point estimate.
        prop_assert!(
            interval.0 <= reference.estimate + 1e-9
                && reference.estimate <= interval.1 + 1e-9,
            "predictive interval {:?} must bracket the estimate {}", interval, reference.estimate);
    }

    /// Degradation guarantee: with zero rate-carrying observations the
    /// overlay is a no-op (availability vector bit-identical) and the
    /// posterior kernel with an empty sampler reproduces the point
    /// kernel's estimate bit for bit — at any worker count.
    #[test]
    fn zero_observations_degrade_to_the_point_path(
        params in params_strategy(),
        samples in 1usize..=2_000,
        workers in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let mut model = campus_model(params);
        let authored: Vec<u64> = model.availability_vector().iter().map(|a| a.to_bits()).collect();

        // An estimator holding only open sojourns (single events) carries
        // no rate information: refine() declines, the overlay is a no-op.
        let mut est = ParamEstimator::new();
        let first = model.components[0].name.clone();
        est.observe(&first, false, 42).expect("open sojourn");
        let posteriors = overlay_model(&mut model, &est, false);
        prop_assert!(posteriors.iter().all(Option::is_none));
        let after: Vec<u64> = model.availability_vector().iter().map(|a| a.to_bits()).collect();
        prop_assert_eq!(authored, after, "authored availabilities must stand untouched");

        let program = model.compile_mc_unfolded();
        let sampler = program.posterior_sampler(&posteriors);
        let (result, _) = program.run_posterior(samples, workers, seed, &sampler);
        prop_assert_eq!(result, program.run(samples, 1, seed),
            "empty sampler must reproduce the point estimate exactly");
    }
}
