//! Umbrella crate for the upsim-rs workspace.
//!
//! This crate only hosts the workspace-level examples (`examples/`) and
//! integration tests (`tests/`); the functionality lives in the member
//! crates, re-exported here for convenience:
//!
//! * [`xmlio`] — XML substrate
//! * [`ict_graph`] — graph engine and path discovery
//! * [`uml`] — UML subset (class/object/activity diagrams, profiles)
//! * [`vpm`] — VIATRA2-style model space and transformations
//! * [`upsim_core`] — the UPSIM methodology (the paper's contribution)
//! * [`dependability`] — RBD / fault-tree / BDD / Monte-Carlo analysis
//! * [`netgen`] — topology and workload generators

pub use dependability;
pub use ict_graph;
pub use netgen;
pub use uml;
pub use upsim_core;
pub use vpm;
pub use xmlio;
