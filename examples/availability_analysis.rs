//! Deep-dive dependability analysis on the case study (paper Sec. VII):
//! every evaluation engine side by side, link failures, the paper's
//! Formula 1 approximation, component importance and a what-if study on
//! redundancy.
//!
//! Run with: `cargo run --release --example availability_analysis`

use dependability::importance::component_importance;
use dependability::transform::{AnalysisOptions, ServiceAvailabilityModel};
use netgen::usi::{printing_service, table_i_mapping, usi_infrastructure};
use upsim_core::pipeline::UpsimPipeline;

fn model(options: AnalysisOptions) -> ServiceAvailabilityModel {
    let mut pipeline =
        UpsimPipeline::new(usi_infrastructure(), printing_service(), table_i_mapping()).unwrap();
    let run = pipeline.run().unwrap();
    ServiceAvailabilityModel::from_run(pipeline.infrastructure(), &run, options)
}

fn main() {
    // 1. Engine comparison (devices only, exact Formula 1).
    let m = model(AnalysisOptions::default());
    let exact = m.availability_bdd();
    println!("engine comparison (perspective T1 -> P2 via printS):");
    println!("  BDD (exact, shared components):   {exact:.9}");
    for (i, system) in m.systems.iter().enumerate() {
        assert!((m.pair_availability_bdd(i) - m.pair_availability_sdp(i)).abs() < 1e-12);
        let _ = system;
    }
    println!("  SDP per pair:                     agrees with BDD to 1e-12");
    println!(
        "  pairwise product (naive):         {:.9}",
        m.availability_pairwise_product()
    );
    let mc = m.monte_carlo(300_000, 0, 42);
    let (lo, hi) = mc.confidence_95();
    println!(
        "  Monte-Carlo (300k samples):       {:.6} [{lo:.6}, {hi:.6}] covers exact: {}",
        mc.estimate,
        mc.covers(exact)
    );

    // 2. Formula variants and link failures.
    let paper = model(AnalysisOptions {
        paper_formula: true,
        ..Default::default()
    });
    println!("\nFormula 1 variants:");
    println!("  A with exact MTBF/(MTBF+MTTR):    {exact:.9}");
    println!(
        "  A with printed 1 - MTTR/MTBF:     {:.9}",
        paper.availability_bdd()
    );
    let with_links = model(AnalysisOptions {
        include_links: true,
        ..Default::default()
    });
    println!(
        "  A with link (connector) failures: {:.9}  ({} components)",
        with_links.availability_bdd(),
        with_links.components.len()
    );

    // 3. Who limits the service? (Sec. VII: "which ICT components can be
    //    the cause")
    println!("\ncomponent importance (top 5 by Birnbaum):");
    for imp in component_importance(&m).into_iter().take(5) {
        println!(
            "  {:<8} A={:.6}  Birnbaum={:.3e}  criticality={:.4}  FV={:.4}",
            imp.name, imp.availability, imp.birnbaum, imp.criticality, imp.fussell_vesely
        );
    }

    // 4. What-if: the client dominates — give the Comp class a standby
    //    spare (redundantComponents = 1) and re-run the whole methodology.
    let mut infra = usi_infrastructure();
    let comp = std::sync::Arc::make_mut(&mut infra.classes)
        .class_mut("Comp")
        .unwrap();
    for app in &mut comp.applied {
        if let Some(slot) = app
            .values
            .iter_mut()
            .find(|(n, _)| n == "redundantComponents")
        {
            slot.1 = uml::Value::Integer(1);
        }
    }
    let mut pipeline = UpsimPipeline::new(infra, printing_service(), table_i_mapping()).unwrap();
    let run = pipeline.run().unwrap();
    let redundant = ServiceAvailabilityModel::from_run(
        pipeline.infrastructure(),
        &run,
        AnalysisOptions::default(),
    );
    println!("\nwhat-if: redundant client hardware (Comp redundantComponents = 1):");
    println!("  before: {exact:.9}");
    println!("  after:  {:.9}", redundant.availability_bdd());
    println!(
        "  yearly user-perceived downtime drops from {:.1} h to {:.1} h",
        (1.0 - exact) * 8760.0,
        (1.0 - redundant.availability_bdd()) * 8760.0
    );
}
