//! A tour of the VPM model space — the VIATRA2-style machinery behind
//! Steps 5–8 (paper Sec. V-C): importing models, querying with declarative
//! patterns, transforming with rules, and the rule-driven path discovery
//! that mirrors the paper's actual VTCL program.
//!
//! Run with: `cargo run --example model_space_tour`

use upsim_core::importers;
use upsim_core::prelude::*;
use vpm::{Constraint, Machine, ModelSpace, Pattern, Rule, Var};

fn main() {
    // A small infrastructure, imported into a fresh model space (Step 5).
    let mut infra = Infrastructure::new("tour");
    infra
        .define_device_class(DeviceClassSpec::client("Comp", 3_000.0, 24.0))
        .unwrap();
    infra
        .define_device_class(DeviceClassSpec::switch("Sw", 61_320.0, 0.5))
        .unwrap();
    infra
        .define_device_class(DeviceClassSpec::server("Server", 60_000.0, 0.1))
        .unwrap();
    for (n, c) in [
        ("t1", "Comp"),
        ("t2", "Comp"),
        ("sw1", "Sw"),
        ("sw2", "Sw"),
        ("srv", "Server"),
    ] {
        infra.add_device(n, c).unwrap();
    }
    for (a, b) in [
        ("t1", "sw1"),
        ("t1", "sw2"),
        ("t2", "sw1"),
        ("sw1", "srv"),
        ("sw2", "srv"),
    ] {
        infra.connect(a, b).unwrap();
    }

    let mut space = ModelSpace::new();
    importers::import_infrastructure(&mut space, &infra).unwrap();
    println!(
        "model space after import: {} entities, {} relations",
        space.entity_count(),
        space.relation_count()
    );

    // Declarative pattern (VTCL-style): all instances of Client-stereotyped
    // classes. `instanceOf` spans the metalevels: instance -> class ->
    // stereotype, with stereotype specialization as supertypes.
    let client_class = Pattern::new(2)
        .with(Constraint::InstanceOf(
            Var(0),
            "profiles.network.Client".into(),
        ))
        .with(Constraint::InstanceOf(
            Var(1),
            "uml.metamodel.InstanceSpecification".into(),
        ))
        .with(Constraint::Under(Var(1), importers::TOPOLOGY_NS.into()));
    // Join: Var(1) is an instance of the class bound to Var(0) — expressed
    // by checking the typing in a post-filter over the match rows.
    let matches = client_class.matches(&space).unwrap();
    let clients: Vec<String> = matches
        .iter()
        .filter(|m| space.is_instance_of(m.get(Var(1)), m.get(Var(0))).unwrap())
        .map(|m| space.name(m.get(Var(1))).unwrap().to_string())
        .collect();
    println!("clients found by pattern matching: {clients:?}");

    // A transformation rule: tag every client entity with a value.
    let tag_rule = Rule::new(
        "tag-clients",
        Pattern::new(1).with(Constraint::Under(Var(0), importers::TOPOLOGY_NS.into())),
        |space, m| {
            let e = m.get(Var(0));
            if space.value(e)?.is_none() {
                space.set_value(e, Some("audited".into()))?;
            }
            Ok(())
        },
    );
    let mut machine = Machine::new();
    let fired = machine.forall(&mut space, &tag_rule).unwrap();
    println!(
        "forall rule fired {fired} times; trace has {} entries",
        machine.trace().len()
    );

    // The rule-driven path discovery (the paper's VTCL program, Step 7).
    let paths = upsim_core::vtcl_reference::discover_paths_vtcl(&mut space, "t1", "srv").unwrap();
    println!("paths t1 -> srv discovered inside the model space:");
    for p in &paths {
        println!("  {}", p.join(" — "));
    }

    // The generic XML importer lifts arbitrary documents (Fig. 3 mappings
    // included) into the same space.
    let xml =
        "<atomicservice id=\"as1\"><requester id=\"t1\"/><provider id=\"srv\"/></atomicservice>";
    vpm::xml_import::import_xml(&mut space, xml, "imported").unwrap();
    let as1 = space.resolve("imported.atomicservice.id").unwrap();
    println!(
        "generic XML import: atomicservice id = {:?}",
        space.value(as1).unwrap()
    );

    // Finally, the model-space browser view of the mapping subtree.
    let imported = space.resolve("imported").unwrap();
    println!(
        "\nmodel-space dump of the imported subtree:\n{}",
        space.dump(imported).unwrap()
    );
}
