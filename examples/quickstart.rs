//! Quickstart: model a tiny network, describe a service, map it, generate
//! the UPSIM and compute its user-perceived availability.
//!
//! Run with: `cargo run --example quickstart`

use dependability::transform::{AnalysisOptions, ServiceAvailabilityModel};
use upsim_core::prelude::*;

fn main() {
    // Step 1: identify ICT component classes (with the availability and
    // network profiles applied — MTBF/MTTR in hours).
    let mut infra = Infrastructure::new("quickstart");
    infra
        .define_device_class(DeviceClassSpec::client("Laptop", 3_000.0, 24.0))
        .unwrap();
    infra
        .define_device_class(DeviceClassSpec::switch("Switch", 61_320.0, 0.5))
        .unwrap();
    infra
        .define_device_class(DeviceClassSpec::server("WebServer", 60_000.0, 0.1))
        .unwrap();

    // Step 2: deploy the topology — a client reaching a server through two
    // redundant switches.
    for (name, class) in [
        ("alice", "Laptop"),
        ("sw1", "Switch"),
        ("sw2", "Switch"),
        ("web", "WebServer"),
    ] {
        infra.add_device(name, class).unwrap();
    }
    for (a, b) in [
        ("alice", "sw1"),
        ("alice", "sw2"),
        ("sw1", "web"),
        ("sw2", "web"),
    ] {
        infra.connect(a, b).unwrap();
    }

    // Step 3: describe the composite service (atomic services only —
    // no relation to the infrastructure yet).
    let service =
        CompositeService::sequential("browse", &["request page", "deliver page"]).unwrap();

    // Step 4: the service mapping pairs bind atomic services to components.
    let mapping = ServiceMapping::new()
        .with(ServiceMappingPair::new("request page", "alice", "web"))
        .with(ServiceMappingPair::new("deliver page", "web", "alice"));

    // Steps 5–8: fully automated.
    let mut pipeline = UpsimPipeline::new(infra, service, mapping).unwrap();
    let run = pipeline.run().unwrap();

    println!("UPSIM for alice -> web:");
    for inst in &run.upsim.instances {
        println!("  {}", inst.signature());
    }
    println!("paths for 'request page':");
    let discovered = run.paths_of("request page").unwrap();
    for path in discovered.named_paths() {
        println!("  {}", path.join(" — "));
    }

    // Outlook (paper Sec. VII): user-perceived steady-state availability.
    let model = ServiceAvailabilityModel::from_run(
        pipeline.infrastructure(),
        &run,
        AnalysisOptions::default(),
    );
    println!(
        "user-perceived service availability = {:.9}",
        model.availability_bdd()
    );
}
