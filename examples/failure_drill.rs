//! A failure drill on the case study: knock components out one at a time
//! and watch the user-perceived view react — the operational use of the
//! UPSIM the paper motivates in Sec. VII ("very helpful in case of service
//! problems, as it provides a quick overview on which ICT components can
//! be the cause").
//!
//! Run with: `cargo run --example failure_drill`

use dependability::downtime::{downtime_per_year, nines, render_downtime};
use dependability::transform::{AnalysisOptions, ServiceAvailabilityModel};
use netgen::usi::{printing_service, table_i_mapping, usi_infrastructure};
use upsim_core::pipeline::UpsimPipeline;

fn availability_for(infra: upsim_core::Infrastructure) -> Option<(f64, usize)> {
    let mut pipeline = UpsimPipeline::new(infra, printing_service(), table_i_mapping()).ok()?;
    let run = pipeline.run().ok()?;
    if run.discovered.iter().any(|d| d.is_empty()) {
        return Some((0.0, run.upsim.instances.len()));
    }
    let model = ServiceAvailabilityModel::from_run(
        pipeline.infrastructure(),
        &run,
        AnalysisOptions::default(),
    );
    Some((model.availability_bdd(), run.upsim.instances.len()))
}

fn main() {
    let (baseline, upsim_size) = availability_for(usi_infrastructure()).unwrap();
    println!(
        "baseline: A = {baseline:.9} ({}-nines, {} per year), UPSIM size {upsim_size}\n",
        nines(baseline),
        render_downtime(downtime_per_year(baseline))
    );

    println!(
        "{:<10} {:>14} {:>8} {:>24}",
        "failed", "A", "nines", "verdict"
    );
    for victim in ["c1", "c2", "d2", "e3", "d1", "e1", "d4", "d3"] {
        let mut infra = usi_infrastructure();
        infra.remove_device(victim).unwrap();
        let (a, _) = availability_for(infra).unwrap();
        let verdict = if a == 0.0 {
            "SERVICE DOWN"
        } else if baseline - a < 1e-4 {
            "tolerated (redundant)"
        } else {
            "degraded"
        };
        println!("{:<10} {:>14.9} {:>8} {:>24}", victim, a, nines(a), verdict);
    }

    println!(
        "\nReading: the redundant core (c1/c2) is fully tolerated; every switch on the\n\
         single access trees (e1/e3/d1/d2/d4) is a single point of failure for this\n\
         user; d3 only carries db/backup/email traffic and does not affect printing."
    );
}
