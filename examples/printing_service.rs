//! The paper's full case study (Sec. VI): the USI campus network, the
//! printing service, and the UPSIMs of Figures 11 and 12.
//!
//! Run with: `cargo run --example printing_service`

use dependability::transform::{AnalysisOptions, ServiceAvailabilityModel};
use netgen::usi::{
    printing_service, second_perspective_mapping, table_i_mapping, usi_infrastructure,
};
use upsim_core::generate::object_diagram_dot;
use upsim_core::pipeline::UpsimPipeline;

fn report(label: &str, pipeline: &mut UpsimPipeline) {
    let run = pipeline.run().unwrap();
    println!("=== {label} ===");
    let mut names: Vec<&str> = run
        .upsim
        .instances
        .iter()
        .map(|i| i.name.as_str())
        .collect();
    names.sort_unstable();
    println!("UPSIM ({} instances): {}", names.len(), names.join(", "));
    println!("size reduction |UPSIM|/|N| = {:.3}", run.reduction_ratio);
    let model = ServiceAvailabilityModel::from_run(
        pipeline.infrastructure(),
        &run,
        AnalysisOptions::default(),
    );
    println!(
        "user-perceived availability = {:.9}",
        model.availability_bdd()
    );
    let downtime_hours = (1.0 - model.availability_bdd()) * 24.0 * 365.0;
    println!("≈ {downtime_hours:.1} hours of service downtime per year, as perceived by this user");
    println!();
}

fn main() {
    // Table I perspective: client T1 prints on P2 via printS (Fig. 11).
    let mut pipeline =
        UpsimPipeline::new(usi_infrastructure(), printing_service(), table_i_mapping()).unwrap();

    // Show the discovery output the paper prints in Sec. VI-G.
    let run = pipeline.run().unwrap();
    println!("paths for the first mapping pair (t1, printS):");
    let discovered = run.paths_of("Request printing").unwrap();
    for i in 0..discovered.len() {
        println!("  {}", discovered.render_path_at(i));
    }
    println!();

    report("Fig. 11 — printing from T1 to P2 via printS", &mut pipeline);

    // Second perspective (Fig. 12): "only minor adjustments to the service
    // mapping" — the infrastructure and service models stay untouched.
    pipeline
        .update_mapping(|m| *m = second_perspective_mapping())
        .unwrap();
    report(
        "Fig. 12 — printing from T15 to P3 via printS",
        &mut pipeline,
    );

    // The UPSIM visualizes which components can cause service problems.
    let run = pipeline.run().unwrap();
    println!(
        "Graphviz DOT of the Fig. 12 UPSIM:\n{}",
        object_diagram_dot(&run.upsim)
    );
}
