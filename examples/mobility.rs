//! Dynamicity scenario (paper Sec. V-A3): a mobile user keeps using the
//! same printing service while moving across the campus; only the service
//! mapping changes between positions — infrastructure and service models
//! are reused, and the pipeline re-runs incrementally.
//!
//! Run with: `cargo run --example mobility`

use dependability::transform::{AnalysisOptions, ServiceAvailabilityModel};
use netgen::usi::{printing_service, table_i_mapping, usi_infrastructure};
use upsim_core::pipeline::UpsimPipeline;

fn main() {
    let mut pipeline =
        UpsimPipeline::new(usi_infrastructure(), printing_service(), table_i_mapping()).unwrap();
    pipeline.run().unwrap();

    // The user starts at t1 and walks past clients on every edge switch,
    // always printing on p2 through printS.
    let positions = ["t1", "t6", "t10", "t14"];
    let mut previous = "t1".to_string();

    println!("mobile user printing on p2 via printS from different clients:\n");
    println!(
        "{:<10} {:>8} {:>14} {:>16} {:>12}",
        "client", "UPSIM", "avail.", "downtime h/yr", "cached step5"
    );
    for position in positions {
        if position != previous {
            let from = previous.clone();
            pipeline
                .update_mapping(|m| {
                    m.move_requester(&from, position);
                })
                .unwrap();
        }
        let run = pipeline.run().unwrap();
        let model = ServiceAvailabilityModel::from_run(
            pipeline.infrastructure(),
            &run,
            AnalysisOptions::default(),
        );
        let availability = model.availability_bdd();
        let cached = run
            .timings
            .iter()
            .any(|t| t.step.starts_with('5') && t.cached);
        println!(
            "{:<10} {:>8} {:>14.9} {:>16.1} {:>12}",
            position,
            run.upsim.instances.len(),
            availability,
            (1.0 - availability) * 24.0 * 365.0,
            cached
        );
        previous = position.to_string();
    }

    println!(
        "\nEvery row after the first reused the imported UML models (step 5 cached);\n\
         only the mapping import, path discovery and UPSIM merge re-ran — the\n\
         paper's point that user mobility touches a single model."
    );
}
