//! Scalability sweep (paper Sec. VIII): generate growing campus networks
//! and measure UPSIM generation end to end, plus the discovery worst case
//! on complete graphs (Sec. V-D).
//!
//! Run with: `cargo run --release --example campus_scaling`

use netgen::campus::{campus_scenario, CampusParams};
use std::time::Instant;
use upsim_core::discovery::{discover, DiscoveryOptions};
use upsim_core::mapping::ServiceMappingPair;
use upsim_core::pipeline::UpsimPipeline;

fn main() {
    println!("campus sweep: devices vs pipeline wall time\n");
    println!(
        "{:>10} {:>8} {:>12} {:>8} {:>10}",
        "devices", "links", "run [ms]", "UPSIM", "reduction"
    );
    for distributions in [2usize, 4, 8, 16, 32, 64] {
        let params = CampusParams {
            core: 2,
            distributions,
            edges_per_distribution: 2,
            clients_per_edge: 8,
            servers: 3,
            dual_homed_edges: false,
        };
        let (infra, service, mapping) = campus_scenario(params);
        let (devices, links) = (infra.device_count(), infra.link_count());
        let mut pipeline = UpsimPipeline::new(infra, service, mapping).unwrap();
        pipeline.record_paths = false;
        let start = Instant::now();
        let run = pipeline.run().unwrap();
        let elapsed = start.elapsed();
        println!(
            "{:>10} {:>8} {:>12.2} {:>8} {:>10.4}",
            devices,
            links,
            elapsed.as_secs_f64() * 1e3,
            run.upsim.instances.len(),
            run.reduction_ratio
        );
    }

    println!("\nworst case: complete graphs K_n (paper Sec. V-D, O(n!) growth)\n");
    println!("{:>6} {:>10} {:>12}", "n", "paths", "time [ms]");
    for n in [5usize, 6, 7, 8, 9] {
        let infra = netgen::random::complete(n);
        let pair = ServiceMappingPair::new("s", "n0", format!("n{}", n - 1));
        let start = Instant::now();
        let d = discover(&infra, &pair, DiscoveryOptions::default()).unwrap();
        println!(
            "{:>6} {:>10} {:>12.2}",
            n,
            d.len(),
            start.elapsed().as_secs_f64() * 1e3
        );
    }
    println!(
        "\nReal campus networks keep few loops (tree-like periphery + redundant core),\n\
         so discovery stays fast even as the network grows — the factorial blow-up is\n\
         confined to pathological dense graphs."
    );
}
