//! End-to-end reproduction of the paper's case study (Sec. VI):
//! USI network → printing service → Table I mapping → UPSIM generation,
//! checked against Figures 11 and 12.

use netgen::usi::{
    printing_service, second_perspective_mapping, table_i_mapping, usi_infrastructure,
    EXPECTED_FIG11_NODES, EXPECTED_FIG12_NODES, PRINTED_PATHS_T1_PRINTS,
};
use upsim_core::pipeline::UpsimPipeline;

fn sorted(names: &[&str]) -> Vec<String> {
    let mut v: Vec<String> = names.iter().map(|s| s.to_string()).collect();
    v.sort();
    v
}

fn upsim_nodes(run: &upsim_core::pipeline::UpsimRun) -> Vec<String> {
    let mut v: Vec<String> = run.upsim.instances.iter().map(|i| i.name.clone()).collect();
    v.sort();
    v
}

#[test]
fn fig11_upsim_for_t1_p2_prints() {
    let mut pipeline =
        UpsimPipeline::new(usi_infrastructure(), printing_service(), table_i_mapping()).unwrap();
    let run = pipeline.run().unwrap();
    assert_eq!(upsim_nodes(&run), sorted(&EXPECTED_FIG11_NODES));
    // The UPSIM is a sub-diagram of the infrastructure (Definition 2) and
    // well-formed against the class diagram.
    assert!(run
        .upsim
        .is_subdiagram_of(&pipeline.infrastructure().objects));
    run.upsim
        .validate(&pipeline.infrastructure().classes)
        .unwrap();
}

#[test]
fn fig12_upsim_for_t15_p3_prints_via_mapping_change_only() {
    let mut pipeline =
        UpsimPipeline::new(usi_infrastructure(), printing_service(), table_i_mapping()).unwrap();
    pipeline.run().unwrap();
    // "To generate the UPSIM for a different perspective [...] we only have
    // to make minor adjustments to the service mapping." (Sec. VI-H)
    pipeline
        .update_mapping(|m| {
            *m = second_perspective_mapping();
        })
        .unwrap();
    let run = pipeline.run().unwrap();
    assert_eq!(upsim_nodes(&run), sorted(&EXPECTED_FIG12_NODES));
    // Step 5 (model import) stayed cached — only the mapping was re-imported.
    let cached: Vec<&str> = run
        .timings
        .iter()
        .filter(|t| t.cached)
        .map(|t| t.step)
        .collect();
    assert_eq!(cached, vec!["5-import-models"]);
}

#[test]
fn sec_vi_g_printed_paths_appear_in_the_run() {
    let mut pipeline =
        UpsimPipeline::new(usi_infrastructure(), printing_service(), table_i_mapping()).unwrap();
    let run = pipeline.run().unwrap();
    let request = run.paths_of("Request printing").unwrap();
    for expected in PRINTED_PATHS_T1_PRINTS {
        let expected: Vec<String> = expected.iter().map(|s| s.to_string()).collect();
        assert!(
            request.named_paths().contains(&expected),
            "missing {expected:?}"
        );
    }
}

#[test]
fn properties_remain_resolvable_on_the_upsim() {
    // Sec. V-E: "It is thus guaranteed that a subsequent service
    // dependability analysis will find specific required properties for
    // every element of the user-perceived ICT infrastructure."
    let mut pipeline =
        UpsimPipeline::new(usi_infrastructure(), printing_service(), table_i_mapping()).unwrap();
    let run = pipeline.run().unwrap();
    for inst in &run.upsim.instances {
        let classes = &pipeline.infrastructure().classes;
        for attr in ["MTBF", "MTTR", "redundantComponents"] {
            assert!(
                run.upsim
                    .instance_value(classes, &inst.name, attr)
                    .is_some(),
                "{}.{attr} unresolvable",
                inst.name
            );
        }
    }
}

#[test]
fn vtcl_reference_matches_graph_engine_on_usi() {
    // The rule-driven model-space implementation of Step 7 (the paper's
    // actual VTCL approach) enumerates the same paths as the graph engine,
    // for every Table I pair.
    let infra = usi_infrastructure();
    let mut space = vpm::ModelSpace::new();
    upsim_core::importers::import_infrastructure(&mut space, &infra).unwrap();
    for pair in table_i_mapping().pairs() {
        let mut vtcl = upsim_core::vtcl_reference::discover_paths_vtcl(
            &mut space,
            &pair.requester,
            &pair.provider,
        )
        .unwrap();
        let mut graph = upsim_core::discovery::discover(
            &infra,
            pair,
            upsim_core::discovery::DiscoveryOptions::default(),
        )
        .unwrap()
        .named_paths();
        vtcl.sort();
        graph.sort();
        assert_eq!(vtcl, graph, "pair {}", pair.atomic_service);
    }
}

#[test]
fn paths_recorded_in_model_space_tree() {
    let mut pipeline =
        UpsimPipeline::new(usi_infrastructure(), printing_service(), table_i_mapping()).unwrap();
    pipeline.run().unwrap();
    let space = pipeline.space();
    // One reserved subtree per atomic service (Step 7).
    let paths_root = space.resolve("paths").unwrap();
    assert_eq!(space.children(paths_root).unwrap().len(), 5);
    let request = space.resolve("paths.Request_printing").unwrap();
    assert_eq!(space.children(request).unwrap().len(), 6);
}
