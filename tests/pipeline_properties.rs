//! Property-based end-to-end tests of the methodology pipeline on generated
//! campus networks: the UPSIM invariants of Definition 2 must hold for
//! every topology shape and every mapping.

use netgen::campus::{campus_infrastructure, CampusParams};
use netgen::services::{random_mapping, sequential_service};
use proptest::prelude::*;
use upsim_core::discovery::DiscoveryOptions;
use upsim_core::pipeline::UpsimPipeline;

fn params_strategy() -> impl Strategy<Value = CampusParams> {
    (1usize..=3, 1usize..=4, 1usize..=2, 1usize..=4, 1usize..=3).prop_map(
        |(core, distributions, edges, clients, servers)| CampusParams {
            core,
            distributions,
            edges_per_distribution: edges,
            clients_per_edge: clients,
            servers,
            dual_homed_edges: false,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn upsim_invariants_hold_on_random_campuses(
        params in params_strategy(),
        service_len in 1usize..5,
        seed in 0u64..1000,
    ) {
        let infra = campus_infrastructure(params);
        let service = sequential_service("svc", service_len);
        let mapping = random_mapping(&service, &infra, seed);
        let mut pipeline = UpsimPipeline::new(infra, service, mapping.clone()).unwrap();
        let run = pipeline.run().unwrap();

        // Definition 2: UPSIM ⊆ N with identical signatures.
        prop_assert!(run.upsim.is_subdiagram_of(&pipeline.infrastructure().objects));
        run.upsim.validate(&pipeline.infrastructure().classes).unwrap();
        prop_assert!(run.reduction_ratio <= 1.0 + 1e-12);

        // Campus networks are connected, so every pair has ≥ 1 path and
        // requester + provider are always in the UPSIM.
        for d in &run.discovered {
            prop_assert!(!d.is_empty(), "pair {:?} found no path", d.pair);
            prop_assert!(run.upsim.instance(&d.pair.requester).is_some());
            prop_assert!(run.upsim.instance(&d.pair.provider).is_some());
            // Every path starts at the requester and ends at the provider.
            for path in d.named_paths() {
                prop_assert_eq!(path.first().unwrap(), &d.pair.requester);
                prop_assert_eq!(path.last().unwrap(), &d.pair.provider);
            }
        }

        // Every UPSIM instance lies on some discovered path.
        for inst in &run.upsim.instances {
            let on_some_path = run.discovered.iter().any(|d| {
                let id = d.name_table().id(&inst.name);
                id.is_some_and(|id| d.interned().iter().any(|p| p.contains(&id)))
            });
            prop_assert!(on_some_path, "{} not on any path", inst.name);
        }
    }

    #[test]
    fn rerun_is_deterministic(params in params_strategy(), seed in 0u64..100) {
        let infra = campus_infrastructure(params);
        let service = sequential_service("svc", 3);
        let mapping = random_mapping(&service, &infra, seed);
        let mut p1 = UpsimPipeline::new(infra.clone(), service.clone(), mapping.clone()).unwrap();
        let mut p2 = UpsimPipeline::new(infra, service, mapping).unwrap();
        let r1 = p1.run().unwrap();
        let r2 = p2.run().unwrap();
        prop_assert_eq!(&r1.upsim, &r2.upsim);
        // And a warm re-run yields the identical UPSIM again.
        let r1b = p1.run().unwrap();
        prop_assert_eq!(&r1.upsim, &r1b.upsim);
    }

    #[test]
    fn parallel_discovery_equals_sequential_at_pipeline_level(
        params in params_strategy(),
        seed in 0u64..100,
    ) {
        let infra = campus_infrastructure(params);
        let service = sequential_service("svc", 2);
        let mapping = random_mapping(&service, &infra, seed);
        let mut seq = UpsimPipeline::new(infra.clone(), service.clone(), mapping.clone()).unwrap();
        let mut par = UpsimPipeline::new(infra, service, mapping).unwrap();
        par.set_options(DiscoveryOptions { parallel: true, threads: 3, ..Default::default() });
        let rs = seq.run().unwrap();
        let rp = par.run().unwrap();
        prop_assert_eq!(&rs.upsim, &rp.upsim);
        for (a, b) in rs.discovered.iter().zip(&rp.discovered) {
            let mut pa = a.interned().to_vec();
            let mut pb = b.interned().to_vec();
            pa.sort();
            pb.sort();
            prop_assert_eq!(pa, pb);
        }
    }

    #[test]
    fn pruned_discovery_equals_unpruned_on_random_campuses(
        params in params_strategy(),
        seed in 0u64..100,
    ) {
        let infra = campus_infrastructure(params);
        let service = sequential_service("svc", 2);
        let mapping = random_mapping(&service, &infra, seed);
        let mut pruned = UpsimPipeline::new(infra.clone(), service.clone(), mapping.clone()).unwrap();
        let mut unpruned = UpsimPipeline::new(infra, service, mapping).unwrap();
        unpruned.set_options(DiscoveryOptions { prune: false, ..Default::default() });
        let rp = pruned.run().unwrap();
        let ru = unpruned.run().unwrap();
        prop_assert_eq!(&rp.upsim, &ru.upsim);
        // Block-cut-tree masking must be invisible: identical paths in the
        // identical DFS emission order, per atomic service.
        for (a, b) in rp.discovered.iter().zip(&ru.discovered) {
            prop_assert_eq!(a.interned(), b.interned());
            prop_assert_eq!(&a.link_paths, &b.link_paths);
        }
    }

    #[test]
    fn topology_damage_never_grows_the_path_set(
        params in params_strategy(),
        seed in 0u64..100,
    ) {
        let infra = campus_infrastructure(params);
        let service = sequential_service("svc", 1);
        let mapping = random_mapping(&service, &infra, seed);
        let mut pipeline = UpsimPipeline::new(infra, service, mapping).unwrap();
        let before = pipeline.run().unwrap().discovered[0].len();
        // Remove one core-distribution link (if the campus has a redundant
        // one) and re-run: the path count can only shrink.
        let removed = pipeline
            .update_infrastructure(|infra| {
                infra.disconnect("dist0", "core0")?;
                Ok(())
            })
            .is_ok();
        if removed {
            let after = pipeline.run().unwrap().discovered[0].len();
            prop_assert!(after <= before, "paths grew after damage: {before} -> {after}");
        }
    }
}
