//! Cross-engine validation of the dependability analysis on generated
//! scenarios: BDD, SDP, RBD (where applicable) and Monte-Carlo must agree,
//! and availability must respond monotonically to redundancy and damage.

use dependability::transform::{AnalysisOptions, ServiceAvailabilityModel};
use netgen::campus::{campus_scenario, CampusParams};
use netgen::usi::{printing_service, table_i_mapping, usi_infrastructure};
use proptest::prelude::*;
use upsim_core::pipeline::UpsimPipeline;

fn usi_model() -> ServiceAvailabilityModel {
    let mut pipeline =
        UpsimPipeline::new(usi_infrastructure(), printing_service(), table_i_mapping()).unwrap();
    let run = pipeline.run().unwrap();
    ServiceAvailabilityModel::from_run(pipeline.infrastructure(), &run, AnalysisOptions::default())
}

#[test]
fn usi_engines_agree() {
    let model = usi_model();
    for i in 0..model.systems.len() {
        let bdd = model.pair_availability_bdd(i);
        let sdp = model.pair_availability_sdp(i);
        assert!((bdd - sdp).abs() < 1e-12, "pair {i}: {bdd} vs {sdp}");
    }
    let exact = model.availability_bdd();
    let mc = model.monte_carlo(300_000, 2, 99);
    assert!(
        mc.covers(exact),
        "MC CI {:?} misses exact {exact}",
        mc.confidence_95()
    );
}

#[test]
fn usi_availability_is_client_bound() {
    // The client (A ≈ 0.9921) dominates the user-perceived availability —
    // everything else is five-nines-ish. So the service availability must
    // sit slightly below the client availability.
    let model = usi_model();
    let a = model.availability_bdd();
    let client = 3000.0 / 3024.0;
    assert!(a < client);
    assert!(a > client - 0.001, "a={a}, client={client}");
}

#[test]
fn redundancy_monotonicity_on_usi() {
    // Increasing redundantComponents on the client class can only help.
    let base = usi_model().availability_bdd();
    let mut infra = usi_infrastructure();
    let comp = std::sync::Arc::make_mut(&mut infra.classes)
        .class_mut("Comp")
        .unwrap();
    for app in &mut comp.applied {
        if let Some(slot) = app
            .values
            .iter_mut()
            .find(|(n, _)| n == "redundantComponents")
        {
            slot.1 = uml::Value::Integer(1);
        }
    }
    let mut pipeline = UpsimPipeline::new(infra, printing_service(), table_i_mapping()).unwrap();
    let run = pipeline.run().unwrap();
    let improved = ServiceAvailabilityModel::from_run(
        pipeline.infrastructure(),
        &run,
        AnalysisOptions::default(),
    )
    .availability_bdd();
    assert!(
        improved > base,
        "redundancy did not improve: {base} -> {improved}"
    );
}

#[test]
fn link_damage_monotonicity_on_usi() {
    // Removing a redundant core link can only lower (or keep) availability.
    let base = usi_model().availability_bdd();
    let mut infra = usi_infrastructure();
    infra.disconnect("d1", "c2").unwrap();
    let mut pipeline = UpsimPipeline::new(infra, printing_service(), table_i_mapping()).unwrap();
    let run = pipeline.run().unwrap();
    let damaged = ServiceAvailabilityModel::from_run(
        pipeline.infrastructure(),
        &run,
        AnalysisOptions::default(),
    )
    .availability_bdd();
    assert!(
        damaged <= base + 1e-15,
        "damage increased availability: {base} -> {damaged}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engines_agree_on_random_campuses(
        core in 1usize..=3,
        distributions in 1usize..=3,
        clients in 1usize..=3,
    ) {
        let params = CampusParams {
            core,
            distributions,
            edges_per_distribution: 2,
            clients_per_edge: clients,
            servers: 2,
            dual_homed_edges: false,
        };
        let (infra, service, mapping) = campus_scenario(params);
        let mut pipeline = UpsimPipeline::new(infra, service, mapping).unwrap();
        let run = pipeline.run().unwrap();
        let model = ServiceAvailabilityModel::from_run(
            pipeline.infrastructure(),
            &run,
            AnalysisOptions::default(),
        );
        for i in 0..model.systems.len() {
            let bdd = model.pair_availability_bdd(i);
            let sdp = model.pair_availability_sdp(i);
            prop_assert!((bdd - sdp).abs() < 1e-10, "pair {i}: {bdd} vs {sdp}");
            // An RBD, when the structure admits one, agrees too.
            if let Some(rbd) = model.pair_rbd(i) {
                let a = rbd.availability(&model.availability_vector());
                prop_assert!((bdd - a).abs() < 1e-10, "pair {i}: rbd {a} vs bdd {bdd}");
            }
        }
        // The service availability is bounded by its weakest pair.
        let service_a = model.availability_bdd();
        for i in 0..model.systems.len() {
            prop_assert!(service_a <= model.pair_availability_bdd(i) + 1e-12);
        }
        prop_assert!((0.0..=1.0).contains(&service_a));
    }

    #[test]
    fn include_links_never_increases_availability(
        distributions in 1usize..=3,
        clients in 1usize..=3,
    ) {
        let params = CampusParams {
            core: 2,
            distributions,
            edges_per_distribution: 1,
            clients_per_edge: clients,
            servers: 1,
            dual_homed_edges: false,
        };
        let (infra, service, mapping) = campus_scenario(params);
        let mut pipeline = UpsimPipeline::new(infra, service, mapping).unwrap();
        let run = pipeline.run().unwrap();
        let devices_only = ServiceAvailabilityModel::from_run(
            pipeline.infrastructure(),
            &run,
            AnalysisOptions::default(),
        )
        .availability_bdd();
        let with_links = ServiceAvailabilityModel::from_run(
            pipeline.infrastructure(),
            &run,
            AnalysisOptions { include_links: true, ..Default::default() },
        )
        .availability_bdd();
        prop_assert!(with_links <= devices_only + 1e-15);
    }
}
