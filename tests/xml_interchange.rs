//! XML interchange: the complete model set survives the on-disk format the
//! CLI uses (infrastructure, service, mapping), and a pipeline built from
//! the reloaded models produces the identical UPSIM.

use netgen::usi::{printing_service, table_i_mapping, usi_infrastructure};
use upsim_core::infrastructure::Infrastructure;
use upsim_core::mapping::ServiceMapping;
use upsim_core::pipeline::UpsimPipeline;
use upsim_core::service::CompositeService;

#[test]
fn usi_infrastructure_roundtrips_through_xml() {
    let infra = usi_infrastructure();
    let xml = infra.to_xml();
    let back = Infrastructure::from_xml(&xml).unwrap();
    assert_eq!(back.classes, infra.classes);
    assert_eq!(back.objects, infra.objects);
    assert_eq!(back.device_count(), 34);
    assert_eq!(back.link_count(), 36);
    // Attribute resolution still works after the roundtrip.
    assert_eq!(back.mtbf("c1"), Some(183_498.0));
    assert_eq!(back.kind_of("p2").unwrap(), upsim_core::DeviceKind::Printer);
}

#[test]
fn reloaded_models_produce_identical_upsim() {
    let infra = usi_infrastructure();
    let service = printing_service();
    let mapping = table_i_mapping();

    let infra2 = Infrastructure::from_xml(&infra.to_xml()).unwrap();
    let service2 = CompositeService::from_xml(&service.to_xml()).unwrap();
    let mapping2 = ServiceMapping::from_xml(&mapping.to_xml()).unwrap();

    let run1 = UpsimPipeline::new(infra, service, mapping)
        .unwrap()
        .run()
        .unwrap();
    let run2 = UpsimPipeline::new(infra2, service2, mapping2)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(run1.upsim, run2.upsim);
}

#[test]
fn upsim_itself_serializes_as_object_diagram() {
    let mut pipeline =
        UpsimPipeline::new(usi_infrastructure(), printing_service(), table_i_mapping()).unwrap();
    let run = pipeline.run().unwrap();
    let xml = uml::xmi::object_diagram_to_xml(&run.upsim);
    let back = uml::xmi::object_diagram_from_xml(&xml).unwrap();
    assert_eq!(back, run.upsim);
    // The serialized UPSIM still validates against the class diagram.
    back.validate(&pipeline.infrastructure().classes).unwrap();
}

#[test]
fn fig3_fragment_is_accepted_verbatim() {
    // The exact text of paper Fig. 3 (with the curly typography quotes
    // replaced by ASCII, as the paper's PDF renders them).
    let fig3 = r#"<atomicservice id="atomic_service_1">
<requester id="component_a"></requester>
<provider id="component_b"></provider>
</atomicservice>"#;
    let mapping = ServiceMapping::from_xml(fig3).unwrap();
    assert_eq!(mapping.pairs().len(), 1);
    let pair = mapping.pair("atomic_service_1").unwrap();
    assert_eq!(pair.requester, "component_a");
    assert_eq!(pair.provider, "component_b");
}

#[test]
fn profiles_roundtrip_through_xmi() {
    for profile in [
        upsim_core::profiles::availability_profile(),
        upsim_core::profiles::network_profile(),
    ] {
        let xml = uml::xmi::profile_to_xml(&profile);
        let back = uml::xmi::profile_from_xml(&xml).unwrap();
        assert_eq!(back, profile);
    }
}
