//! Failure injection on the USI case study: physically removing a
//! component from the topology must agree with analytically forcing that
//! component down in the availability model — and the UPSIM tells us in
//! advance which removals are fatal (paper Sec. VII: "a quick overview on
//! which ICT components can be the cause").

use dependability::transform::{AnalysisOptions, ServiceAvailabilityModel};
use netgen::usi::{printing_service, table_i_mapping, usi_infrastructure};
use upsim_core::pipeline::UpsimPipeline;

fn baseline_model() -> (UpsimPipeline, ServiceAvailabilityModel) {
    let mut pipeline =
        UpsimPipeline::new(usi_infrastructure(), printing_service(), table_i_mapping()).unwrap();
    let run = pipeline.run().unwrap();
    let model = ServiceAvailabilityModel::from_run(
        pipeline.infrastructure(),
        &run,
        AnalysisOptions::default(),
    );
    (pipeline, model)
}

#[test]
fn single_points_of_failure_kill_the_service() {
    // Every singleton cut of the (t1, printS) pair, when removed from the
    // topology, leaves no path for that pair.
    for victim in ["e1", "d1", "d4"] {
        let mut infra = usi_infrastructure();
        infra.remove_device(victim).unwrap();
        let mut pipeline =
            UpsimPipeline::new(infra, printing_service(), table_i_mapping()).unwrap();
        let run = pipeline.run().unwrap();
        assert!(
            run.paths_of("Request printing").unwrap().is_empty(),
            "removing {victim} should disconnect t1 from printS"
        );
    }
}

#[test]
fn redundant_core_tolerates_single_failures() {
    // c1 and c2 back each other up: removing either keeps every pair alive.
    for victim in ["c1", "c2", "d2", "e3"] {
        let mut infra = usi_infrastructure();
        let survives_all = victim == "c1" || victim == "c2";
        infra.remove_device(victim).unwrap();
        let mut pipeline =
            UpsimPipeline::new(infra, printing_service(), table_i_mapping()).unwrap();
        let run = pipeline.run().unwrap();
        let t1_alive = !run.paths_of("Request printing").unwrap().is_empty();
        let p2_alive = !run.paths_of("Login to printer").unwrap().is_empty();
        if survives_all {
            assert!(
                t1_alive && p2_alive,
                "core loss of {victim} must be tolerated"
            );
        } else {
            // d2/e3 sit on p2's only access path.
            assert!(t1_alive, "{victim} is not on t1's access path");
            assert!(!p2_alive, "{victim} carries p2's access path");
        }
    }
}

#[test]
fn analytic_knockout_matches_physical_removal() {
    // Force a UPSIM-internal component to availability 0 in the model; the
    // exact BDD result must equal the availability computed on a topology
    // with the component physically removed. (Terminals t1/p2/printS are
    // excluded — their removal invalidates the mapping itself.)
    let (_, base_model) = baseline_model();
    for victim in ["e1", "e3", "d1", "d2", "d4", "c1", "c2"] {
        let mut knocked = base_model.clone();
        let index = knocked
            .component_index(victim)
            .unwrap_or_else(|| panic!("{victim} must be a UPSIM component"));
        knocked.components[index].availability = 0.0;
        let analytic = knocked.availability_bdd();

        let mut infra = usi_infrastructure();
        infra.remove_device(victim).unwrap();
        let mut pipeline =
            UpsimPipeline::new(infra, printing_service(), table_i_mapping()).unwrap();
        let run = pipeline.run().unwrap();
        let physical = ServiceAvailabilityModel::from_run(
            pipeline.infrastructure(),
            &run,
            AnalysisOptions::default(),
        )
        .availability_bdd();

        assert!(
            (analytic - physical).abs() < 1e-12,
            "{victim}: analytic {analytic} vs physical {physical}"
        );
    }
}

#[test]
fn knockouts_separate_cut_components_from_redundant_ones() {
    // Forcing any component of a singleton cut set down takes the whole
    // service to availability 0 (every pair shares the singleton cuts of
    // its access trees); knocking out either core switch barely matters.
    let (_, model) = baseline_model();
    let base = model.availability_bdd();
    let knocked_availability = |name: &str| {
        let mut knocked = model.clone();
        let index = knocked.component_index(name).expect("UPSIM component");
        knocked.components[index].availability = 0.0;
        knocked.availability_bdd()
    };
    for cut_member in ["t1", "p2", "printS", "e1", "e3", "d1", "d2", "d4"] {
        assert_eq!(
            knocked_availability(cut_member),
            0.0,
            "{cut_member} is a singleton cut"
        );
    }
    for redundant in ["c1", "c2"] {
        let a = knocked_availability(redundant);
        assert!(
            a > base - 1e-4,
            "core {redundant} is redundant: {a} vs {base}"
        );
        assert!(a < base, "still strictly worse without {redundant}");
    }
    // The Birnbaum ranking puts the client first (it has both the worst
    // availability *and* singleton-cut status).
    let importance = dependability::importance::component_importance(&model);
    assert_eq!(importance[0].name, "t1");
}

#[test]
fn link_failure_injection_via_disconnect() {
    // Severing the redundant core link c1—c2 must not disconnect anything,
    // only reduce path diversity.
    let (mut pipeline, _) = baseline_model();
    let before = pipeline.run().unwrap();
    let paths_before = before.paths_of("Request printing").unwrap().len();
    pipeline
        .update_infrastructure(|infra| {
            assert!(infra.disconnect("c1", "c2")?);
            Ok(())
        })
        .unwrap();
    let after = pipeline.run().unwrap();
    let paths_after = after.paths_of("Request printing").unwrap().len();
    assert!(paths_after < paths_before);
    assert!(paths_after >= 2, "dual-homing still provides redundancy");
}
