//! Offline stand-in for the `proptest` crate, exposing the API surface this
//! workspace uses: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, [`strategy::Just`], [`arbitrary::any`], integer-range and
//! regex-subset string strategies, and [`collection::vec`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the behaviours it needs. Differences from real proptest, by
//! design: no shrinking (a failing case reports its case index and the
//! deterministic per-case seed instead of a minimized input), and the
//! string strategies implement only the regex subset that appears in this
//! repository (character classes, literals, `\PC`, and `{m,n}`-style
//! repetition).

pub mod test_runner {
    use std::fmt;

    /// Per-run configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the workspace's many
            // pipeline-level properties fast while still being a real sweep.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic xoshiro256++ stream, seeded from the test name and
    /// case index so every run of a test reproduces the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut state = h ^ ((case as u64) << 32) ^ case as u64;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            TestRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values (this stand-in has no shrinking, so a strategy
    /// is exactly a seeded generator).
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Bounded recursive strategies: `f` maps a strategy for the inner
        /// level to a strategy one level deeper. `desired_size` and
        /// `expected_branch_size` are accepted for API compatibility but
        /// only `depth` limits the recursion here.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = f(strat).boxed();
                let base = leaf.clone();
                strat = BoxedStrategy::from_fn(move |rng| {
                    if rng.next_u64() & 1 == 0 {
                        base.new_value(rng)
                    } else {
                        deeper.new_value(rng)
                    }
                });
            }
            strat
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::from_fn(move |rng| self.new_value(rng))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V> {
        gen: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> BoxedStrategy<V> {
        pub fn from_fn(f: impl Fn(&mut TestRng) -> V + 'static) -> Self {
            BoxedStrategy { gen: Rc::new(f) }
        }
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "cannot sample from empty range");
                    ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "cannot sample from empty range");
                    ((*self.start() as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    /// The strategy of all values of `T` (`any::<bool>()`, `any::<i32>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite, roundtrip-friendly values.
            (rng.next_u64() as i64 >> 12) as f64 / 256.0
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> char {
            char::from_u32(0x20 + (rng.below(0x5e)) as u32).unwrap_or('a')
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted element-count specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Regex-subset string generation for `&str` strategies.
pub mod string {
    use crate::test_runner::TestRng;

    enum Atom {
        /// A fixed character.
        Literal(char),
        /// A `[...]` class, expanded to its member characters.
        Class(Vec<char>),
        /// `\PC` — any printable (non-control) character.
        Printable,
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut members = Vec::new();
                    i += 1;
                    assert!(
                        chars.get(i) != Some(&'^'),
                        "negated classes are not supported by the vendored proptest"
                    );
                    while i < chars.len() && chars[i] != ']' {
                        let c = chars[i];
                        if chars.get(i + 1) == Some(&'-')
                            && chars.get(i + 2).is_some_and(|&e| e != ']')
                        {
                            let end = chars[i + 2];
                            for v in (c as u32)..=(end as u32) {
                                if let Some(m) = char::from_u32(v) {
                                    members.push(m);
                                }
                            }
                            i += 3;
                        } else {
                            members.push(c);
                            i += 1;
                        }
                    }
                    assert!(chars.get(i) == Some(&']'), "unterminated character class");
                    i += 1;
                    Atom::Class(members)
                }
                '\\' => {
                    // Only `\PC` (printable char) and escaped literals.
                    if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                        i += 3;
                        Atom::Printable
                    } else {
                        let c = *chars.get(i + 1).expect("dangling escape");
                        i += 2;
                        Atom::Literal(c)
                    }
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated {")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse().expect("bad quantifier"),
                            hi.parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Class(members) => members[rng.below(members.len() as u64) as usize],
            Atom::Printable => {
                // Mostly ASCII printables with an occasional wider char.
                if rng.below(8) == 0 {
                    ['é', '中', 'ß', 'Ω', '€'][rng.below(5) as usize]
                } else {
                    char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
                }
            }
        }
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let span = (piece.max - piece.min + 1) as u64;
            let count = piece.min + rng.below(span) as usize;
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

/// `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`: {}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_strategies_match_their_pattern() {
        let mut rng = crate::test_runner::TestRng::for_case("string", 0);
        for _ in 0..200 {
            let s = crate::string::generate("[A-Za-z_][A-Za-z0-9_.-]{0,8}", &mut rng);
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            assert!(
                first.is_ascii_alphabetic() || first == '_',
                "bad first char in {s:?}"
            );
            assert!(s.chars().count() <= 9);
            for c in chars {
                assert!(
                    c.is_ascii_alphanumeric() || "_.-".contains(c),
                    "bad char {c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn printable_pattern_never_emits_controls() {
        let mut rng = crate::test_runner::TestRng::for_case("pc", 0);
        for _ in 0..100 {
            let s = crate::string::generate("\\PC{0,64}", &mut rng);
            assert!(s.chars().count() <= 64);
            assert!(!s.chars().any(char::is_control), "control char in {s:?}");
        }
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(n in 2usize..8, k in 0u64..=5, i in -10i32..10) {
            prop_assert!((2..8).contains(&n));
            prop_assert!(k <= 5);
            prop_assert!((-10..10).contains(&i));
        }

        #[test]
        fn vec_lengths_respect_size((len, v) in (1usize..4).prop_flat_map(|len| {
            (Just(len), crate::collection::vec(0usize..10, len..=len))
        })) {
            prop_assert_eq!(v.len(), len);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_only_picks_arms(c in prop_oneof![Just('a'), Just('b')]) {
            prop_assert!(c == 'a' || c == 'b');
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #[allow(unreachable_code)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
