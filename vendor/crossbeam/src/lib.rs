//! Offline stand-in for the `crossbeam` crate, exposing the API surface this
//! workspace uses:
//!
//! * [`thread::scope`] / [`thread::Scope::spawn`] — scoped threads with the
//!   crossbeam calling convention (the spawned closure receives the scope,
//!   and `scope` returns a `Result`), implemented over [`std::thread::scope`];
//! * [`channel`] — MPMC `bounded`/`unbounded` channels with blocking
//!   `send`/`recv` and disconnect-on-drop semantics, implemented with a
//!   `Mutex` + two `Condvar`s.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of behaviours it needs. Semantics match crossbeam
//! for this subset; raw throughput of the channel is not a goal (the
//! workloads pushed through it are multi-microsecond pipeline runs).

pub mod thread {
    use std::any::Any;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle mirroring `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope (ignored by
        /// every caller in this workspace, but part of the crossbeam API).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned.
    ///
    /// Unlike crossbeam this cannot observe panics of threads that were
    /// never joined (std propagates those by panicking), so the result is
    /// always `Ok` — callers only use `.expect(..)` on it.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error of [`Sender::send_timeout`]: the message comes back either
    /// because the queue stayed full past the deadline or because every
    /// receiver is gone (mirrors `crossbeam-channel`).
    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        Timeout(T),
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Bounded channels: None = unbounded.
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a channel holding at most `cap` queued messages; `send`
    /// blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// Creates a channel with an unbounded queue.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.shared.not_full.wait(state).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Like [`send`](Self::send), but gives up (returning the value)
        /// once `timeout` has elapsed with the queue still full.
        pub fn send_timeout(
            &self,
            value: T,
            timeout: std::time::Duration,
        ) -> Result<(), SendTimeoutError<T>> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                match self.shared.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        let now = std::time::Instant::now();
                        if now >= deadline {
                            return Err(SendTimeoutError::Timeout(value));
                        }
                        let (next, _) = self
                            .shared
                            .not_full
                            .wait_timeout(state, deadline - now)
                            .expect("channel poisoned");
                        state = next;
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Fails only when the queue is
        /// empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of currently queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::thread;

    #[test]
    fn scope_spawns_and_joins() {
        let data = [1, 2, 3, 4];
        let sum: i32 = thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn channel_fifo_and_disconnect() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2));
        // The second send can only complete after this recv.
        assert_eq!(rx.recv(), Ok(1));
        assert!(handle.join().unwrap().is_ok());
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn mpmc_drains_everything() {
        let (tx, rx) = channel::bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..25 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort();
        assert_eq!(all.len(), 100);
        all.dedup();
        assert_eq!(all.len(), 100);
    }
}
