//! Offline stand-in for the `rand` crate, exposing exactly the API surface
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{random, random_bool, random_range}` and `seq::IndexedRandom::choose`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of behaviours it needs. The generator is
//! xoshiro256++ seeded via splitmix64 — deterministic for a given seed,
//! which is all the callers (seeded Monte-Carlo, seeded topology
//! generators, seeded test fixtures) rely on. It is NOT the same stream
//! as the real `StdRng` and is not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Seeding entry point (`StdRng::seed_from_u64(s)`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// The random-value methods used by the workspace.
pub trait Rng {
    /// The raw 64-bit output stream.
    fn next_u64(&mut self) -> u64;

    /// A value from the "standard" distribution (`f64` in `[0, 1)`,
    /// uniform integers, fair `bool`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(&mut || self.next_u64())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.random();
        u < p.clamp(0.0, 1.0)
    }

    /// A uniform value from an (inclusive or half-open) range.
    fn random_range<T: SampleUniform, R: Into<UniformRange<T>>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let r: UniformRange<T> = range.into();
        T::sample_uniform(r, &mut || self.next_u64())
    }
}

/// Types producible from the standard distribution.
pub trait StandardSample {
    fn standard_sample(next: &mut dyn FnMut() -> u64) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample(next: &mut dyn FnMut() -> u64) -> Self {
        // 53 mantissa bits -> [0, 1).
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn standard_sample(next: &mut dyn FnMut() -> u64) -> Self {
        next()
    }
}

impl StandardSample for bool {
    fn standard_sample(next: &mut dyn FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

/// A resolved range request: `[lo, hi]` when `inclusive`, `[lo, hi)` otherwise.
pub struct UniformRange<T> {
    pub lo: T,
    pub hi: T,
    pub inclusive: bool,
}

impl<T> From<Range<T>> for UniformRange<T> {
    fn from(r: Range<T>) -> Self {
        UniformRange {
            lo: r.start,
            hi: r.end,
            inclusive: false,
        }
    }
}

impl<T: Copy> From<RangeInclusive<T>> for UniformRange<T> {
    fn from(r: RangeInclusive<T>) -> Self {
        UniformRange {
            lo: *r.start(),
            hi: *r.end(),
            inclusive: true,
        }
    }
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Sized {
    fn sample_uniform(range: UniformRange<Self>, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(range: UniformRange<Self>, next: &mut dyn FnMut() -> u64) -> Self {
                let lo = range.lo as i128;
                let hi = range.hi as i128;
                let span = if range.inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "cannot sample from an empty range");
                // Modulo bias is negligible for the spans used here.
                lo.wrapping_add((next() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_uniform(range: UniformRange<Self>, next: &mut dyn FnMut() -> u64) -> Self {
        let u = f64::standard_sample(next);
        range.lo + u * (range.hi - range.lo)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Random selection from a slice (`[T]::choose`).
    pub trait IndexedRandom {
        type Output;
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.random_range(0..self.len());
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(2..6usize);
            assert!((2..6).contains(&v));
            let w = rng.random_range(0..=3usize);
            assert!((0..=3).contains(&w));
            let f = rng.random_range(0.1..0.95);
            assert!((0.1..0.95).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = ["a", "b", "c"];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: Vec<u8> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
