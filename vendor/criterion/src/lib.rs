//! Offline stand-in for the `criterion` crate, exposing the API surface the
//! workspace's benches use: `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{sample_size, measurement_time, throughput,
//! bench_function, bench_with_input, finish}`, `Bencher::{iter,
//! iter_batched}`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the behaviours it needs. Measurement is deliberately simple —
//! a short warm-up, then `sample_size` timed samples of an adaptively
//! chosen iteration count — and the report is median / min / max per
//! benchmark on stdout. No statistical outlier analysis, no HTML reports,
//! no saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepted by `BenchmarkGroup::throughput`; recorded but not reported.
#[derive(Debug, Clone)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-target measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        // Small by default: these benches run in CI alongside tests.
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.settings.clone(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
        }
    }
}

pub struct BenchmarkGroup {
    name: String,
    settings: Settings,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.settings.clone(), f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.settings.clone(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Anything usable as a benchmark name inside a group.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// Batch-size hint for `iter_batched`; ignored by this stand-in.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    settings: Settings,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of an adaptively
    /// chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: how many iterations fit in one slice of
        // the measurement budget?
        let calibration = Instant::now();
        black_box(routine());
        let one = calibration.elapsed().max(Duration::from_nanos(1));
        let budget = self
            .settings
            .measurement_time
            .max(Duration::from_millis(10));
        let per_sample = budget / self.settings.sample_size as u32;
        let iters = (per_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as usize;

        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// `iter` with a per-iteration setup stage whose time is not counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.settings.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, settings: Settings, mut f: F) {
    let mut bencher = Bencher {
        settings,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{id:<60} (no samples)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{id:<60} time: [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(2u64 + 2)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_support_ids_and_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(20));
        group.bench_with_input(BenchmarkId::new("n", 4), &4u64, |b, &n| {
            b.iter(|| black_box((0..n).sum::<u64>()))
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| black_box(7)));
        group.bench_function("named", |b| b.iter(|| black_box(1)));
        group.finish();
    }
}
